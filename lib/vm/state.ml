(* Shared execution-engine state and step helpers.

   The mini-JVM has two execution engines (DESIGN.md section 10):

   - [Interp]'s switch engine — the reference: a fetch/decode loop with a
     per-instruction [match];
   - [Engine]'s closure engine — each method body is pre-compiled into a
     flat, pc-indexed array of OCaml closures with direct-threaded
     fall-through, eliminating decode from the hot loop.

   Everything both engines share lives here: the interpreter state record
   [t], the timing/charging helpers, the memory-access wrappers (plain and
   attributed), GC, allocation, frame pooling, and [call]/[run]. The
   engines stay bit-identical by construction because every observable
   state transition goes through these helpers; the differential fuzz
   oracle's engine axis (lib/fuzz/oracle.ml) asserts it empirically.

   [engine_exec] is the indirection that breaks the module cycle: [call]
   dispatches a method body through it, [Interp.create] wires it to the
   engine selected by [options.engine], and both engines' [Invoke]
   handlers recurse through [call]. *)

type engine = Switch | Closure

type options = {
  machine : Memsim.Config.machine;
  heap_limit_bytes : int;
  hot_threshold : int;
  alloc_cycles : int;
  gc_cycles_per_live : int;
  gc_cycles_per_dead : int;
  max_steps : int;
  unguarded_spec_loads : bool;
  engine : engine;
      (** which execution engine [Interp.create] wires; [Closure] is the
          default — the switch engine is kept as the differential
          reference *)
  fault_engine_desync : bool;
      (** fault-injection knob for the fuzz oracle's engine axis: when
          true the {e closure} engine retires one extra instruction per
          executed [Goto] — cycles, output and heap stay identical, so
          only the oracle's full-stats engine diff can catch it. Proves
          the engine cross-check adds real coverage. *)
  fault_hw_desync : bool;
      (** fault-injection knob for the fuzz oracle's hardware-prefetcher
          axis: when true, a run whose machine ships the RPT model
          appends a sentinel line to program output at end of run — an
          architectural divergence only the {none,stream,rpt} HW
          cross-check can catch. Proves that axis adds real coverage. *)
  fault_monitor_desync : bool;
      (** fault-injection knob for the fuzz oracle's monitor axis: when
          true every window-boundary fire charges one extra simulated
          cycle — the observer participating in the simulation, which is
          exactly what the monitor observer-effect cross-check (plain vs
          monitored run) exists to forbid. Proves that axis adds real
          coverage. *)
}

let default_options machine =
  {
    machine;
    heap_limit_bytes = 64 * 1024 * 1024;
    hot_threshold = 2;
    alloc_cycles = 4;
    gc_cycles_per_live = 10;
    gc_cycles_per_dead = 2;
    max_steps = 2_000_000_000;
    unguarded_spec_loads = false;
    engine = Closure;
    fault_engine_desync = false;
    fault_hw_desync = false;
    fault_monitor_desync = false;
  }

(* Telemetry wiring, bundled so the disabled state is a single [None]
   test on the hot paths. [attrib] is memsim's int-keyed effectiveness
   table; [registry] maps the interpreter's structural prefetch-site
   keys to the dense ids [attrib] speaks; [tsink] (optional even when
   attribution is on) receives GC spans. *)
type telemetry = {
  attrib : Memsim.Attribution.t;
  registry : Telemetry.Attrib.t;
  tsink : Telemetry.Sink.t option;
}

(* Profiler wiring: a record of observer closures installed by the
   profiling layer (lib/profile). The interpreter reports every cycle it
   charges to exactly one hook call, so a collector that sums what it is
   handed reconstructs [Stats.cycles] exactly — the profiler's
   conservation law. Hooks observe only: a profiled run is bit-identical
   to a plain one (fuzz-checked). Profiling requires telemetry (the
   stall breakdown is maintained by the hierarchy's [_attr] path). *)
type prof_bin = Prof_retire | Prof_alloc | Prof_pf_overhead | Prof_guard_overhead

type profile_hooks = {
  on_cycles : method_id:int -> pc:int -> bin:prof_bin -> cycles:int -> unit;
  on_stall :
    method_id:int -> pc:int -> obj:int -> tlb:int -> l1:int -> l2:int ->
    mem:int -> unit;
  on_alloc : obj:int -> method_id:int -> pc:int -> bytes:int -> unit;
  on_gc : cycles:int -> unit;
}

(* Monitor wiring: fixed simulated-cycle window boundaries, polled on the
   one chokepoint every instrumented cycle charge flows through
   ([charge], plus GC's direct add). The callback observes only — it must
   never touch simulated state. Window boundaries are a pure function of
   the cycle stream, and the two engines charge identical cycle sequences
   when instrumented (their bit-identity contract), so boundaries land at
   identical cycles on both engines by construction. *)
type monitor = {
  window_cycles : int;
  mutable next_boundary : int;
  on_window : boundary:int -> unit;
      (** called once per crossed boundary with the boundary's nominal
          cycle count; a single large charge (a long stall, a GC) may
          cross several boundaries and fires once for each *)
}

(* One instruction of a closure-compiled method body. Handlers capture
   the interpreter [t] they were compiled against; [None]/[Some v] is the
   method's return value, exactly like [call]'s result. *)
type handler = Frame.t -> Value.t option

type t = {
  program : Classfile.program;
  heap : Heap.t;
  mem : Memsim.Hierarchy.t;
  stats : Memsim.Stats.t;
      (** [Hierarchy.stats mem], hoisted: the record's identity is stable
          across [Hierarchy.reset] (the counters are reset in place), so
          [charge]/[retire] can update it without re-fetching it from the
          hierarchy on every instruction. *)
  opts : options;
  globals : Value.t array;
  out : Buffer.t;
  pool_frames : Frame.t array array;
      (** per-method free stack of frames; [call] recycles activation
          records instead of allocating locals/stack/site arrays anew.
          Stored as a growable array per method (valid prefix length in
          [pool_len]) rather than a list so the per-return release does
          not cons — on call-dense workloads the pool churns once per
          invocation and the cons cells dominated minor-GC pressure *)
  pool_len : int array;  (** live prefix length of [pool_frames.(id)] *)
  scratch_args : Value.t array array;
      (** per-arity reusable argument buffers for the closure engine's
          [Invoke] handlers (slot [a] holds an [a]-length array, lazily
          created). Safe to reuse across calls: [call] consumes the
          buffer into the callee frame's locals before any bytecode
          executes, and the (cold, once-per-method) compile hook gets a
          defensive copy — nothing retains the buffer itself. The switch
          engine, byte-faithful to the seed interpreter, keeps
          allocating fresh argument arrays. *)
  closure_cache : compiled_method option array;
      (** per-method closure-engine artifact, lazily (re)compiled by
          [Engine]; invalidated when the code array identity, the
          compiled flag or the observer fingerprint changes *)
  mutable frame_stack : Frame.t array;
      (** activation stack, replacing the former [Frame.t list]: pushed
          at [call] entry, popped on exit; only the [frame_depth]-prefix
          is live (slots above it hold stale pointers that the simulated
          GC never sees — {!roots} walks the prefix only) *)
  mutable frame_depth : int;
  mutable compile_hook :
    (t -> Classfile.method_info -> Value.t array -> unit) option;
  mutable load_observer :
    (method_id:int -> site:int -> addr:int -> unit) option;
  mutable gc_count : int;
  mutable gc_cycles : int;
  mutable interpreted_cycles : int;
  mutable compiled_cycles : int;
  mutable steps : int;
  mutable faulting_prefetches : int;
      (** prefetch-type operations that computed an address outside the
          simulated address space (negative) — always a codegen bug *)
  mutable spec_guard_trips : int;
      (** spec_loads whose target fell outside every live object: the
          guard fired and [Null] was substituted (benign by design) *)
  mutable telem : telemetry option;
      (** [None] (the default) selects the plain hierarchy entry points:
          telemetry off costs one immediate-constant test per access *)
  mutable prof : profile_hooks option;
      (** [None] (the default) disables profiling: off costs one
          immediate-constant test per charge site *)
  mutable mon : monitor option;
      (** [None] (the default) disables windowed monitoring: off costs
          one immediate-constant test per [charge] — and none at all on
          the closure engine's uninstrumented fast path, which batches
          its base costs past [charge] entirely (monitoring is part of
          the observer fingerprint, so that path never runs monitored) *)
  mutable engine_exec : t -> Frame.t -> Value.t option;
      (** the selected engine's method-body executor; wired by
          [Interp.create], dispatched through by [call] *)
}

and compiled_method = {
  cm_code : Bytecode.instr array;
      (** physical identity of the body this artifact was compiled from;
          a JIT pass swapping [method_info.code] invalidates it *)
  cm_compiled : bool;
      (** the [compiled] flag baked into the handlers' base cost *)
  cm_instrumented : bool;
      (** observer fingerprint: [true] iff telemetry, profiling or a
          load observer was installed at compile time *)
  cm_handlers : handler array;
      (** length [n+1]: one handler per pc plus the out-of-bounds
          sentinel at index [n] *)
}

exception Vm_error of string

exception Budget_exhausted of int
(** The step budget ([options.max_steps]) was exhausted; the payload is
    the budget that was exceeded. A distinct exception (not a
    {!Vm_error}) so drivers can map it to a dedicated exit code. *)

let () =
  Printexc.register_printer (function
    | Budget_exhausted max_steps ->
        Some (Printf.sprintf "step budget exceeded (max_steps=%d)" max_steps)
    | _ -> None)

let make ?options machine program =
  let opts =
    match options with Some o -> o | None -> default_options machine
  in
  let mem = Memsim.Hierarchy.create machine in
  {
    program;
    heap = Heap.create ~limit_bytes:opts.heap_limit_bytes ();
    mem;
    stats = Memsim.Hierarchy.stats mem;
    opts;
    globals = Array.make (max 1 (Array.length program.statics)) Value.Null;
    out = Buffer.create 256;
    pool_frames = Array.make (max 1 (Array.length program.methods)) [||];
    pool_len = Array.make (max 1 (Array.length program.methods)) 0;
    scratch_args = Array.make 16 [||];
    closure_cache = Array.make (max 1 (Array.length program.methods)) None;
    frame_stack = [||];
    frame_depth = 0;
    compile_hook = None;
    load_observer = None;
    gc_count = 0;
    gc_cycles = 0;
    interpreted_cycles = 0;
    compiled_cycles = 0;
    steps = 0;
    faulting_prefetches = 0;
    spec_guard_trips = 0;
    telem = None;
    prof = None;
    mon = None;
    engine_exec =
      (fun _ _ -> invalid_arg "Vm.State: no execution engine wired");
  }

(* The observer fingerprint: when every observer is off, the closure
   engine compiles the plain handler variant, with no per-step option
   tests at all — the zero-cost-when-off guarantee held structurally.
   Observers must therefore be installed before the run starts (the
   harness always does); the artifact is re-validated at every method
   entry, so an observer installed between calls takes effect at the
   next activation. *)
let instrumented t =
  match (t.telem, t.prof, t.load_observer) with
  | None, None, None -> t.mon <> None
  | _ -> true

(* The profiler bin of an instruction's base execution slot. The base
   slot of a prefetch-type instruction is itself overhead the
   optimization added — it bins as pf/guard overhead, not retire, so the
   profiler's overhead bins carry the full cost of the pass's inserted
   code (see lib/strideprefetch/codegen.ml for the emitting side). Both
   engines classify through this one function. *)
let bin_of_instr (instr : Bytecode.instr) =
  match instr with
  | Prefetch_inter _ | Prefetch_dynamic _ -> Prof_pf_overhead
  | Spec_load _ -> Prof_guard_overhead
  | Prefetch_indirect { guarded; _ } ->
      if guarded then Prof_guard_overhead else Prof_pf_overhead
  | _ -> Prof_retire

let set_telemetry t ~registry ?sink () =
  let attrib = Memsim.Attribution.create () in
  (match sink with
  | Some s -> Telemetry.Sink.set_cycle_source s (fun () -> t.stats.cycles)
  | None -> ());
  t.telem <- Some { attrib; registry; tsink = sink }

let set_profile t hooks =
  if t.telem = None then
    invalid_arg
      "Interp.set_profile: profiling requires telemetry (call set_telemetry \
       first; the stall breakdown lives on the attributed hierarchy path)";
  t.prof <- Some hooks

(* Fan-out combinator: [set_profile] is single-consumer by design (the
   disabled state must stay a single [None] test), so a run that wants
   both the object-centric profiler and the live monitor listening to the
   same charge stream installs one combined hook set. [a] fires before
   [b] on every call; both observe only, so order cannot matter for
   correctness — it is fixed anyway to keep runs reproducible. *)
let combine_profile_hooks a b =
  {
    on_cycles =
      (fun ~method_id ~pc ~bin ~cycles ->
        a.on_cycles ~method_id ~pc ~bin ~cycles;
        b.on_cycles ~method_id ~pc ~bin ~cycles);
    on_stall =
      (fun ~method_id ~pc ~obj ~tlb ~l1 ~l2 ~mem ->
        a.on_stall ~method_id ~pc ~obj ~tlb ~l1 ~l2 ~mem;
        b.on_stall ~method_id ~pc ~obj ~tlb ~l1 ~l2 ~mem);
    on_alloc =
      (fun ~obj ~method_id ~pc ~bytes ->
        a.on_alloc ~obj ~method_id ~pc ~bytes;
        b.on_alloc ~obj ~method_id ~pc ~bytes);
    on_gc =
      (fun ~cycles ->
        a.on_gc ~cycles;
        b.on_gc ~cycles);
  }

let attribution t =
  match t.telem with Some tl -> Some tl.attrib | None -> None

let finalize_telemetry t =
  match t.telem with
  | Some tl -> Memsim.Attribution.flush tl.attrib
  | None -> ()

(* Every address a prefetch-type instruction computes flows through here;
   a negative address can only come from broken distance/offset arithmetic
   in the prefetch pass, so the differential oracle asserts the counter
   stays zero. *)
let[@inline] audit_prefetch_addr t addr =
  if addr < 0 then t.faulting_prefetches <- t.faulting_prefetches + 1

let vm_error fmt = Printf.ksprintf (fun msg -> raise (Vm_error msg)) fmt

(* A cycle charge crossed the current window boundary: close every window
   the charge jumped over (a long stall or a GC bill can span several),
   firing the callback once per boundary so window indices stay dense.
   Out of line: the in-line cost of an armed monitor is one compare. *)
let[@inline never] mon_fire t (m : monitor) =
  while t.stats.cycles >= m.next_boundary do
    let boundary = m.next_boundary in
    m.next_boundary <- boundary + m.window_cycles;
    if t.opts.fault_monitor_desync then t.stats.cycles <- t.stats.cycles + 1;
    m.on_window ~boundary
  done

let[@inline] mon_poll t =
  match t.mon with
  | None -> ()
  | Some m -> if t.stats.cycles >= m.next_boundary then mon_fire t m

let set_monitor t ~window_cycles ~on_window =
  if window_cycles <= 0 then
    invalid_arg "Interp.set_monitor: window_cycles must be positive";
  let next_boundary =
    ((t.stats.cycles / window_cycles) + 1) * window_cycles
  in
  t.mon <- Some { window_cycles; next_boundary; on_window }

let[@inline] charge t (frame : Frame.t) cycles =
  let stats = t.stats in
  stats.cycles <- stats.cycles + cycles;
  if frame.method_info.compiled then
    t.compiled_cycles <- t.compiled_cycles + cycles
  else t.interpreted_cycles <- t.interpreted_cycles + cycles;
  mon_poll t

let[@inline] charge_stall t (frame : Frame.t) cycles =
  t.stats.stall_cycles <- t.stats.stall_cycles + cycles;
  charge t frame cycles

let[@inline] retire t n =
  t.stats.retired_instructions <- t.stats.retired_instructions + n

let[@inline] now t = t.stats.cycles

let observe_load t (frame : Frame.t) ~site ~addr =
  frame.site_prev.(site) <- frame.site_addr.(site);
  frame.site_addr.(site) <- addr;
  match t.load_observer with
  | Some f -> f ~method_id:frame.method_info.method_id ~site ~addr
  | None -> ()

(* Report a stalled demand access to the profiler. The attributing pc is
   [frame.pc - 1]: every memory-access handler runs after [frame.pc] was
   advanced past the instruction and none of them branches first, so this
   is the pc of the instruction being executed (the closure engine's
   instrumented handlers maintain the same invariant). The four
   components are read back from the hierarchy's breakdown of the access
   that just returned [stall]; they sum to it exactly. *)
let[@inline never] prof_stall t p (frame : Frame.t) ~obj ~stall:_ =
  p.on_stall ~method_id:frame.method_info.method_id ~pc:(frame.pc - 1) ~obj
    ~tlb:(Memsim.Hierarchy.last_tlb_stall t.mem)
    ~l1:(Memsim.Hierarchy.last_l1_stall t.mem)
    ~l2:(Memsim.Hierarchy.last_l2_stall t.mem)
    ~mem:(Memsim.Hierarchy.last_mem_stall t.mem)

(* Report a non-stall cycle charge ([bin] at [pc]) to the profiler.
   Kept out of line so the disabled state costs one immediate test. *)
let[@inline] prof_cycles t ~method_id ~pc ~bin ~cycles =
  match t.prof with
  | Some p -> p.on_cycles ~method_id ~pc ~bin ~cycles
  | None -> ()

(* The packed program counter handed to the hierarchy: method id in the
   high bits, bytecode pc in the low 16. This is the identity the RPT
   hardware prefetcher indexes by, so it must be engine-invariant: the
   switch engine passes [frame.pc - 1] (the executing pc — see
   [prof_stall] above for the invariant), the closure engine bakes the
   same compile-time pc into each handler (its uninstrumented variant
   does not maintain [frame.pc] at run time). *)
let[@inline] pack_pc (frame : Frame.t) ~pc =
  (frame.method_info.method_id lsl 16) lor (pc land 0xffff)

let demand t frame ~pc ~obj ~addr ~kind =
  let pc = pack_pc frame ~pc in
  let stall =
    match t.telem with
    | None -> Memsim.Hierarchy.demand_access t.mem ~pc ~addr ~kind ~now:(now t)
    | Some tl ->
        let stall =
          Memsim.Hierarchy.demand_access_attr t.mem ~attrib:tl.attrib ~pc
            ~addr ~kind ~now:(now t) ~dkey:(-1)
        in
        (match t.prof with
        | Some p when stall > 0 -> prof_stall t p frame ~obj ~stall
        | Some _ | None -> ());
        stall
  in
  if stall > 0 then charge_stall t frame stall

(* A demand load at a numbered load site. Under telemetry its memory
   misses are bucketed by the packed (method, site) key — the coverage
   denominator for prefetches registered against that site. *)
let demand_load t (frame : Frame.t) ~pc ~obj ~addr ~site =
  let pc = pack_pc frame ~pc in
  let stall =
    match t.telem with
    | None ->
        Memsim.Hierarchy.demand_access t.mem ~pc ~addr ~kind:`Load
          ~now:(now t)
    | Some tl ->
        let dkey =
          Telemetry.Attrib.demand_key ~method_id:frame.method_info.method_id
            ~site
        in
        let stall =
          Memsim.Hierarchy.demand_access_attr t.mem ~attrib:tl.attrib ~pc
            ~addr ~kind:`Load ~now:(now t) ~dkey
        in
        (match t.prof with
        | Some p when stall > 0 -> prof_stall t p frame ~obj ~stall
        | Some _ | None -> ());
        stall
  in
  if stall > 0 then charge_stall t frame stall

(* Plain-variant demand access: the closure engine's uninstrumented
   handlers go straight to the hierarchy, with no telemetry/profiler
   option tests — byte-for-byte the [None] branch of [demand] above. *)
let[@inline] demand_plain t (frame : Frame.t) ~pc ~addr ~kind =
  let stall =
    Memsim.Hierarchy.demand_access t.mem ~pc:(pack_pc frame ~pc) ~addr ~kind
      ~now:t.stats.cycles
  in
  if stall > 0 then charge_stall t frame stall

let collect_garbage t =
  let ts_us, cycles_begin =
    match t.telem with
    | Some { tsink = Some s; _ } -> (Telemetry.Sink.now_us s, t.stats.cycles)
    | _ -> (0.0, 0)
  in
  let roots =
    (* Reconstruct the former [Frame.t list] ordering (innermost
       activation first) from the stack's live prefix: prepending while
       walking bottom-up leaves the top frame at the head, so root —
       and hence compaction — order is bit-identical to the seed. *)
    let fs = ref [] in
    for i = 0 to t.frame_depth - 1 do
      fs := t.frame_stack.(i) :: !fs
    done;
    List.concat_map Frame.roots !fs
    @ Array.to_list t.globals
  in
  let result = Gc_compact.collect t.heap ~roots in
  t.gc_count <- t.gc_count + 1;
  let cycles =
    (result.live * t.opts.gc_cycles_per_live)
    + (result.collected * t.opts.gc_cycles_per_dead)
  in
  t.gc_cycles <- t.gc_cycles + cycles;
  t.stats.cycles <- t.stats.cycles + cycles;
  (match t.prof with Some p -> p.on_gc ~cycles | None -> ());
  (* GC is the one place cycles move without going through [charge]:
     poll the monitor here too so a window boundary inside a large GC
     bill closes at the same simulated cycle on both engines. Polled
     after the [on_gc] hook so a monitor that bins GC cycles has seen
     the bill by the time the window carrying it closes. *)
  mon_poll t;
  (* Compaction rewrites the simulated address space: flush the hierarchy
     but keep the accumulated counters. [Stats.copy_into] owns the field
     list, so a newly added counter cannot silently desync here. *)
  let saved = Memsim.Stats.copy t.stats in
  Memsim.Hierarchy.reset t.mem;
  Memsim.Stats.copy_into saved ~into:t.stats;
  match t.telem with
  | None -> ()
  | Some tl ->
      (* The shadow tables speak pre-compaction line indices: any fill
         still untracked is useless by definition now. *)
      Memsim.Attribution.flush tl.attrib;
      (match tl.tsink with
      | Some s ->
          Telemetry.Sink.add_span s ~cat:"gc" ~name:"gc"
            ~args:
              [
                ("live", Telemetry.Json.Int result.live);
                ("collected", Telemetry.Json.Int result.collected);
                ("gc_count", Telemetry.Json.Int t.gc_count);
                ("gc_cycles", Telemetry.Json.Int cycles);
              ]
            ~ts_us
            ~dur_us:(Telemetry.Sink.now_us s -. ts_us)
            ~cycles_begin ~cycles_end:t.stats.cycles ()
      | None -> ())

let allocate t frame ~pc:alloc_pc alloc =
  let id =
    try alloc ()
    with Heap.Out_of_memory -> (
      collect_garbage t;
      try alloc ()
      with Heap.Out_of_memory -> vm_error "heap exhausted after collection")
  in
  charge t frame t.opts.alloc_cycles;
  (* Record the allocation site {e before} the header write so the
     write's stall can already be attributed to the new object. *)
  (match t.prof with
  | Some p ->
      let method_id = frame.Frame.method_info.method_id in
      let pc = frame.Frame.pc - 1 in
      p.on_alloc ~obj:id ~method_id ~pc ~bytes:(Heap.size_of t.heap id);
      p.on_cycles ~method_id ~pc ~bin:Prof_alloc ~cycles:t.opts.alloc_cycles
  | None -> ());
  (* The header write warms the first line of the new object. *)
  demand t frame ~pc:alloc_pc ~obj:id ~addr:(Heap.base_of t.heap id)
    ~kind:`Store;
  id

let as_ref frame v =
  match v with
  | Value.Ref id -> id
  | Value.Null ->
      vm_error "null pointer dereference in %s"
        frame.Frame.method_info.method_name
  | Value.Int _ ->
      vm_error "integer used as reference in %s"
        frame.Frame.method_info.method_name

let[@inline] compare_int (c : Bytecode.cmp) a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Gt -> a > b
  | Le -> a <= b

(* Load the array length (bounds-check load), verify the index, and return
   the element address. Charges the length-load access. *)
let array_access t frame ~pc ~len_site ~id ~index =
  let len_addr = Heap.length_addr t.heap id in
  demand_load t frame ~pc ~obj:id ~addr:len_addr ~site:len_site;
  observe_load t frame ~site:len_site ~addr:len_addr;
  let len = Heap.array_length t.heap id in
  if index < 0 || index >= len then
    vm_error "array index %d out of bounds [0,%d) in %s" index len
      frame.Frame.method_info.method_name;
  Heap.elem_addr t.heap id index

(* Plain-variant twin of [array_access] for the closure engine's
   uninstrumented handlers: direct demand access, inline site-register
   update, no observer dispatch. *)
let array_access_plain t (frame : Frame.t) ~pc ~len_site ~id ~index =
  let base, len = Heap.array_view t.heap id in
  let len_addr = base + Classfile.array_length_offset in
  demand_plain t frame ~pc ~addr:len_addr ~kind:`Load;
  frame.site_prev.(len_site) <- frame.site_addr.(len_site);
  frame.site_addr.(len_site) <- len_addr;
  if index < 0 || index >= len then
    vm_error "array index %d out of bounds [0,%d) in %s" index len
      frame.Frame.method_info.method_name;
  base + Classfile.array_elems_offset + (index * Classfile.slot_bytes)

let maybe_compile t (m : Classfile.method_info) args =
  if (not m.compiled) && m.invocations >= t.opts.hot_threshold then
    match t.compile_hook with
    | Some hook ->
        (* Mark first: the hook may recursively execute nothing, but a
           failed compilation should not retrigger on every call. The
           copy isolates the hook from the closure engine's reusable
           scratch buffer (cold path: once per method). *)
        m.compiled <- true;
        hook t m (Array.copy args)
    | None -> ()

(* Acquire an activation record, recycling one from the per-method pool
   when its shape still matches (the JIT may have swapped the method body,
   invalidating pooled frames — [Frame.reusable] checks). *)
let acquire_frame t (m : Classfile.method_info) ~args =
  let id = m.method_id in
  let len = t.pool_len.(id) in
  if len > 0 then begin
    let frame = t.pool_frames.(id).(len - 1) in
    if Frame.reusable frame m then begin
      t.pool_len.(id) <- len - 1;
      Frame.reset frame ~args;
      frame
    end
    else begin
      (* Stale shape: drop the whole pool for this method. *)
      t.pool_len.(id) <- 0;
      Frame.create m ~args
    end
  end
  else Frame.create m ~args

(* Pool depth per method is capped: past it (deep recursion) frames are
   simply not recycled, which only costs a fresh allocation later. *)
let max_pool = 64

let release_frame t (frame : Frame.t) =
  let id = frame.method_info.method_id in
  let arr = t.pool_frames.(id) in
  let len = t.pool_len.(id) in
  if len < Array.length arr then begin
    Array.unsafe_set arr len frame;
    t.pool_len.(id) <- len + 1
  end
  else if len < max_pool then begin
    let grown = Array.make (if len = 0 then 4 else 2 * len) frame in
    Array.blit arr 0 grown 0 len;
    t.pool_frames.(id) <- grown;
    t.pool_len.(id) <- len + 1
  end

let pop_frames t =
  if t.frame_depth > 0 then t.frame_depth <- t.frame_depth - 1

let push_frame t (frame : Frame.t) =
  let stack = t.frame_stack in
  let d = t.frame_depth in
  if d < Array.length stack then Array.unsafe_set stack d frame
  else begin
    let grown = Array.make (if d = 0 then 64 else 2 * d) frame in
    Array.blit stack 0 grown 0 d;
    t.frame_stack <- grown
  end;
  t.frame_depth <- d + 1

(* Reusable per-arity argument buffer for the closure engine (see the
   [scratch_args] field doc for the safety argument). *)
let scratch_args t arity =
  let pool = t.scratch_args in
  if arity < Array.length pool then begin
    let a = Array.unsafe_get pool arity in
    if Array.length a = arity then a
    else begin
      let a = Array.make arity Value.Null in
      pool.(arity) <- a;
      a
    end
  end
  else Array.make arity Value.Null

let call t (m : Classfile.method_info) args =
  m.invocations <- m.invocations + 1;
  maybe_compile t m args;
  let frame = acquire_frame t m ~args in
  push_frame t frame;
  (* Explicit push/pop instead of [Fun.protect]: the happy path allocates
     no closure; the exception path reraises with its backtrace intact.
     On an exception the frame is deliberately NOT returned to the pool —
     the VM is unwinding and the pool's contents no longer matter. *)
  match t.engine_exec t frame with
  | result ->
      pop_frames t;
      release_frame t frame;
      result
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      pop_frames t;
      Printexc.raise_with_backtrace e bt

let run t =
  let entry = Classfile.method_of_id t.program t.program.entry in
  let result = call t entry (Array.make entry.arity Value.Null) in
  (* Fuzz fault injection for the HW-prefetcher oracle axis: an
     architectural observable (program output) that depends on which
     hardware prefetcher model the machine ships — exactly the
     divergence the {none,stream,rpt} cross-check exists to catch. *)
  (if t.opts.fault_hw_desync then
     match t.opts.machine.hw_prefetch with
     | Memsim.Config.Hw_rpt _ -> Buffer.add_string t.out "<hw-desync>\n"
     | Memsim.Config.Hw_none | Memsim.Config.Hw_stream _ -> ());
  result
