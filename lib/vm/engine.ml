(* The closure-compiled execution engine (DESIGN.md section 10).

   [compile] translates a method body, at JIT time, into a flat array of
   OCaml closures — one handler per pc, plus an out-of-bounds sentinel at
   index [n]. Each handler performs exactly the observable state
   transitions of one iteration of the switch engine's fetch/decode loop
   (Interp.exec_switch), then tail-calls the next handler directly:
   straight-line code threads through captured [next] closures and never
   touches the dispatch [match] again, which is where the speedup comes
   from. Branch handlers jump through the handler array
   ([Array.unsafe_get handlers target] — safe: every baked target was
   bounds-checked at compile time).

   Bit-identity with the switch engine is the hard contract (enforced by
   test/test_engine.ml and the fuzz oracle's engine axis). The exact
   reference sequence per instruction is:

     bounds-check pc -> steps++ -> budget check -> fetch -> pc++ ->
     retire 1 -> charge base_cost -> profiler base-slot report ->
     instruction body

   and the compiled handlers replay it with three compile-time
   transformations, each individually cycle-neutral:

   - The pc bounds check is baked: in-range pcs get handlers, branch
     targets are validated when the branch is compiled (an out-of-range
     target becomes a raising handler that fires {e after} the backedge
     bookkeeping, exactly when the switch engine's next loop iteration
     would), and fall-through past the last instruction lands on the
     sentinel.
   - Charges that precede the next observation point are folded: the
     memory hierarchy only observes [t.stats.cycles] at access time
     ([~now]), so a prefetch op's base slot + incremental cost, or an
     array op's two base slots, become one charge for the same total —
     and in the uninstrumented variant the folding extends to whole
     basic blocks (see the superinstruction commentary below). Charges
     on either side of an access are never folded.
   - Observer specialization: when telemetry, profiling and the load
     observer are all off ([State.instrumented] false), the {e plain}
     handler variant is compiled — no per-step option tests, no
     [frame.pc] stores (nothing can observe pc without an observer
     installed), direct calls into the hierarchy. Otherwise the
     {e instrumented} variant mirrors the switch engine's attributed path
     verbatim, maintaining the [frame.pc = executing pc + 1] invariant
     that stall/alloc attribution reads. The artifact records which
     variant it is and is recompiled if the observer set changes.

   Compiled/interpreted cycle attribution reads [m.compiled] dynamically
   in [pre] (not the baked entry value) because the switch engine's
   [charge] does: a recursive method compiled mid-activation flips the
   attribution of the outer activation's remaining cycles while its
   baked [base_cost] stays, and we reproduce that faithfully.

   Artifacts are cached per method in [t.closure_cache] keyed on the
   physical identity of [m.code] (every JIT pass swaps in a fresh array;
   see Jit.Pipeline), the compiled flag, and the observer fingerprint —
   validated on every method entry, refreshed eagerly by the pipeline's
   [on_mutate] hook between passes. *)

open State

(* Int-specialized twin of [State.compare_int]: the shared helper is
   polymorphic (generic-compare C call); here the operands are always
   ints. *)
let[@inline] icompare (c : Bytecode.cmp) (a : int) (b : int) =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Gt -> a > b
  | Le -> a <= b

(* Hand-inlined operand-stack primitives. [Frame.push]/[pop] carry their
   error paths (string building) inline, which makes them too big for the
   Closure middle-end to inline cross-module; these twins keep the happy
   path to a bounds test + array move and push the raising code out of
   line. Messages are byte-identical to Frame's. *)

let[@inline never] stack_overflow (frame : Frame.t) =
  raise
    (Frame.Stack_error
       ("operand stack overflow in " ^ frame.method_info.method_name))

let[@inline never] stack_underflow (frame : Frame.t) =
  raise
    (Frame.Stack_error
       ("operand stack underflow in " ^ frame.method_info.method_name))

let[@inline never] int_expected (frame : Frame.t) v =
  raise
    (Frame.Stack_error
       (Printf.sprintf "expected int on stack in %s, got %s"
          frame.method_info.method_name (Value.to_string v)))

let[@inline] push (frame : Frame.t) v =
  if frame.sp >= Frame.max_stack then stack_overflow frame;
  Array.unsafe_set frame.stack frame.sp v;
  frame.sp <- frame.sp + 1

let[@inline] pop (frame : Frame.t) =
  if frame.sp <= 0 then stack_underflow frame;
  let sp = frame.sp - 1 in
  frame.sp <- sp;
  Array.unsafe_get frame.stack sp

let[@inline] pop_int (frame : Frame.t) =
  match pop frame with Value.Int n -> n | v -> int_expected frame v

let[@inline] peek (frame : Frame.t) =
  if frame.sp <= 0 then stack_underflow frame;
  Array.unsafe_get frame.stack (frame.sp - 1)

(* Block-local top-of-stack caching (see the commentary in [compile]): a
   [vhandler] is a handler compiled against a {e full} cache — its second
   argument is the logical top of stack, which is {e not} present in
   [frame.stack]. [kont] is a continuation of either kind, matched at
   compile time against the statically-tracked cache state. *)
type vhandler = Frame.t -> Value.t -> Value.t option
type kont = KH of handler | KV of vhandler

(* Write a cached value back into the stack array. Unconditionally in
   bounds: a value is only cached after the push producing it passed its
   overflow check, and [frame.sp] cannot change while it stays cached. *)
let[@inline] spill (frame : Frame.t) v =
  Array.unsafe_set frame.stack frame.sp v;
  frame.sp <- frame.sp + 1

let[@inline] cached_int (frame : Frame.t) v =
  match v with Value.Int n -> n | v -> int_expected frame v

(* The shared step prologue: budget, retire, charge — with the retired
   count and cycle cost pre-folded by the compiler ([retired]/[cost] are
   baked constants at every call site). *)
let[@inline] pre (t : t) (m : Classfile.method_info) ~max_steps ~retired ~cost
    =
  let steps = t.steps + 1 in
  t.steps <- steps;
  if steps > max_steps then raise (Budget_exhausted max_steps);
  let stats = t.stats in
  stats.retired_instructions <- stats.retired_instructions + retired;
  stats.cycles <- stats.cycles + cost;
  if m.compiled then t.compiled_cycles <- t.compiled_cycles + cost
  else t.interpreted_cycles <- t.interpreted_cycles + cost

(* Instrumented prologue: additionally maintains [frame.pc] (attribution
   reads [frame.pc - 1] as the executing pc) and reports the base slot to
   the profiler under the instruction's pre-classified bin. *)
let[@inline] pre_i (t : t) (m : Classfile.method_info) (frame : Frame.t) ~pc
    ~max_steps ~base_cost ~bin =
  let steps = t.steps + 1 in
  t.steps <- steps;
  if steps > max_steps then raise (Budget_exhausted max_steps);
  frame.pc <- pc + 1;
  retire t 1;
  charge t frame base_cost;
  match t.prof with
  | Some p -> p.on_cycles ~method_id:m.method_id ~pc ~bin ~cycles:base_cost
  | None -> ()

let compile (t : t) (m : Classfile.method_info) : compiled_method =
  let code = m.code in
  let n = Array.length code in
  let cm_instrumented = instrumented t in
  let cm_compiled = m.compiled in
  let machine = t.opts.machine in
  let base_cost =
    if cm_compiled then machine.compiled_cost else machine.interp_cost
  in
  let max_steps = t.opts.max_steps in
  let heap = t.heap in
  let mem = t.mem in
  let method_name = m.method_name in
  let oob pc : handler =
   fun _ -> vm_error "pc %d out of bounds in %s" pc method_name
  in
  let handlers : handler array = Array.make (n + 1) (oob n) in
  (* The continuation for a taken branch at [pc] to [target]: count the
     backedge, then enter [target]'s handler — or raise the bounds error
     the switch engine would raise at its next loop top. Forward in-range
     targets are already compiled (backward fill) and bind directly;
     backward targets tie the knot through the array at run time. *)
  let taken_of ~pc target : handler =
    let backedge = target <= pc in
    let in_bounds = target >= 0 && target < n in
    match (backedge, in_bounds) with
    | false, true -> handlers.(target)
    | true, true ->
        fun frame ->
          m.backedges <- m.backedges + 1;
          (Array.unsafe_get handlers target) frame
    | false, false -> oob target
    | true, false ->
        fun _ ->
          m.backedges <- m.backedges + 1;
          vm_error "pc %d out of bounds in %s" target method_name
  in
  (* [Goto] is where the fuzz oracle's engine-desync fault injection
     lands: one extra retired instruction per executed goto, visible only
     in the full-stats cross-engine diff. *)
  let goto_retired = if t.opts.fault_engine_desync then 2 else 1 in

  (* ---- plain variant: all observers off at compile time ----

     Uninstrumented bodies are compiled as basic-block superinstructions.
     The method is partitioned at block leaders (entry, branch targets,
     and the instruction after any control transfer); within a block, the
     per-instruction prologues are folded into one batched prologue at
     the head — steps and retired count for the whole block committed at
     once — and the instruction {e bodies}, stripped of their prologues,
     thread through direct tail calls.

     Cycle charges are committed in {e segments}. A block may contain
     instructions that observe the cycle clock mid-body (a memory access
     reads [now], an allocation can charge GC cycles, a prefetch
     timestamps its fill), and each must run under exactly the
     cumulative [t.stats.cycles] the switch engine's charge-then-observe
     order produces: every instruction up to and including itself
     charged, nothing later. So the head commits the costs of the first
     segment — up to and including the first observer — and a charge
     step after each observer commits the next segment, giving
     bit-identical [now] at every observation while pure runs between
     observers still pay zero dispatch bookkeeping. [m.compiled] cannot
     flip inside a block (it flips only at an entry to [m] itself, and a
     call terminates a block — every segment charge runs before the
     [Invoke] body), so each segment's attribution test reads the same
     value the head did.

     The batched budget test [steps + k > max_steps] fires iff one of
     the k per-step tests would (the k-th is the batch test itself), and
     then falls back — before committing anything — to the block's
     per-instruction handler chain, which reproduces the exact raise
     point and partial bookkeeping of the switch engine.

     One knowingly unobservable divergence: if an instruction raises
     mid-block (stack error, division by zero, a heap fault), the whole
     block's step/retired bookkeeping and the current segment's cycle
     charges are already committed where the switch engine stops at the
     faulting instruction. Program output, the raised error and the
     frame state are still byte-identical, and no stats counter is
     readable after an aborted run — the fuzz oracle compares crashing
     cells by crash class only. *)
  let is_terminator (instr : Bytecode.instr) =
    match instr with
    | Goto _ | If_icmp _ | If _ | If_acmpeq _ | If_acmpne _ | Ifnull _
    | Ifnonnull _ | Invoke _ | Return | Ireturn | Areturn ->
        true
    | _ -> false
  in
  (* Instructions whose body observes or advances the cycle clock: the
     demand accesses read [now] against the caches, allocation can run
     the collector (which charges cycles), the prefetch family
     timestamps fills, and a call executes a callee full of all of the
     above. Each one ends a charge segment. *)
  let observes_cycles (instr : Bytecode.instr) =
    match instr with
    | Getfield _ | Putfield _ | Getstatic _ | Putstatic _ | Aaload _
    | Iaload _ | Aastore _ | Iastore _ | Arraylength _ | New _ | Newarray _
    | Prefetch_inter _ | Prefetch_dynamic _ | Prefetch_indirect _
    | Spec_load _ | Invoke _ ->
        true
    | _ -> false
  in
  let retired_of (instr : Bytecode.instr) =
    match instr with
    | Aaload _ | Iaload _ | Aastore _ | Iastore _ -> 2
    | Goto _ -> goto_retired
    | _ -> 1
  in
  (* The full cycle cost of one instruction, with the in-case charges the
     switch engine performs before any observation pre-folded: the array
     ops' second base slot, the prefetch ops' incremental cost. *)
  let cost_of (instr : Bytecode.instr) =
    match instr with
    | Aaload _ | Iaload _ | Aastore _ | Iastore _ -> 2 * base_cost
    | Prefetch_inter _ | Prefetch_dynamic _ ->
        base_cost + max 0 (machine.prefetch_cost - base_cost)
    | Spec_load _ -> base_cost + max 0 (machine.guarded_load_cost - base_cost)
    | Prefetch_indirect { guarded; _ } ->
        let full =
          if guarded then machine.guarded_load_cost else machine.prefetch_cost
        in
        base_cost + max 0 (full - base_cost)
    | _ -> base_cost
  in
  let locals_len = max m.max_locals m.arity in

  (* The prologue-free instruction body. [next] is the fall-through
     continuation: inside a block, the next body; at the block's end, the
     successor block's handler. *)
  let body ~(next : handler) pc (instr : Bytecode.instr) : handler =
    match instr with
    | Iconst k ->
        let v = Value.of_int k in
        fun frame ->
          push frame v;
          next frame
    | Aconst_null ->
        fun frame ->
          push frame Value.Null;
          next frame
    | Iload i | Aload i ->
        (* Baked bounds check: the frame executing this artifact always
           has [max max_locals arity] locals (Frame.reusable discards
           stale pooled frames, and any pass growing max_locals swaps
           [m.code], invalidating the artifact), so an in-range constant
           index can skip the runtime check. Out-of-range indices keep
           the checked access and its Invalid_argument. *)
        if i >= 0 && i < locals_len then
          fun frame ->
            push frame (Array.unsafe_get frame.locals i);
            next frame
        else
          fun frame ->
            push frame frame.locals.(i);
            next frame
    | Istore i | Astore i ->
        if i >= 0 && i < locals_len then
          fun frame ->
            Array.unsafe_set frame.locals i (pop frame);
            next frame
        else
          fun frame ->
            frame.locals.(i) <- pop frame;
            next frame
    | Dup ->
        fun frame ->
          push frame (peek frame);
          next frame
    | Pop ->
        fun frame ->
          ignore (pop frame);
          next frame
    | Iadd ->
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a + b));
          next frame
    | Isub ->
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a - b));
          next frame
    | Imul ->
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a * b));
          next frame
    | Idiv ->
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          if b = 0 then vm_error "division by zero in %s" method_name;
          push frame (Value.of_int (a / b));
          next frame
    | Irem ->
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          if b = 0 then vm_error "division by zero in %s" method_name;
          push frame (Value.of_int (a mod b));
          next frame
    | Ineg ->
        fun frame ->
          push frame (Value.of_int (-pop_int frame));
          next frame
    | Iand ->
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a land b));
          next frame
    | Ior ->
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a lor b));
          next frame
    | Ixor ->
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a lxor b));
          next frame
    | Ishl ->
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a lsl (b land 63)));
          next frame
    | Ishr ->
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a asr (b land 63)));
          next frame
    | Goto target -> taken_of ~pc target
    | If_icmp (c, target) -> (
        let taken = taken_of ~pc target in
        match c with
        | Eq ->
            fun frame ->
              let b = pop_int frame in
              let a = pop_int frame in
              if a = b then taken frame else next frame
        | Ne ->
            fun frame ->
              let b = pop_int frame in
              let a = pop_int frame in
              if a <> b then taken frame else next frame
        | Lt ->
            fun frame ->
              let b = pop_int frame in
              let a = pop_int frame in
              if a < b then taken frame else next frame
        | Ge ->
            fun frame ->
              let b = pop_int frame in
              let a = pop_int frame in
              if a >= b then taken frame else next frame
        | Gt ->
            fun frame ->
              let b = pop_int frame in
              let a = pop_int frame in
              if a > b then taken frame else next frame
        | Le ->
            fun frame ->
              let b = pop_int frame in
              let a = pop_int frame in
              if a <= b then taken frame else next frame)
    | If (c, target) -> (
        let taken = taken_of ~pc target in
        match c with
        | Eq ->
            fun frame -> if pop_int frame = 0 then taken frame else next frame
        | Ne ->
            fun frame -> if pop_int frame <> 0 then taken frame else next frame
        | Lt ->
            fun frame -> if pop_int frame < 0 then taken frame else next frame
        | Ge ->
            fun frame -> if pop_int frame >= 0 then taken frame else next frame
        | Gt ->
            fun frame -> if pop_int frame > 0 then taken frame else next frame
        | Le ->
            fun frame -> if pop_int frame <= 0 then taken frame else next frame)
    | If_acmpeq target ->
        let taken = taken_of ~pc target in
        fun frame ->
          let b = pop frame in
          let a = pop frame in
          if Value.equal a b then taken frame else next frame
    | If_acmpne target ->
        let taken = taken_of ~pc target in
        fun frame ->
          let b = pop frame in
          let a = pop frame in
          if not (Value.equal a b) then taken frame else next frame
    | Ifnull target ->
        let taken = taken_of ~pc target in
        fun frame ->
          (match pop frame with
          | Value.Null -> taken frame
          | _ -> next frame)
    | Ifnonnull target ->
        let taken = taken_of ~pc target in
        fun frame ->
          (match pop frame with
          | Value.Null -> next frame
          | _ -> taken frame)
    | Getfield { site; offset; name = _; is_ref = _ } ->
        let slot = (offset - Classfile.header_bytes) / Classfile.slot_bytes in
        fun frame ->
          let id = as_ref frame (pop frame) in
          let addr = Heap.base_of heap id + offset in
          demand_plain t frame ~pc ~addr ~kind:`Load;
          frame.site_prev.(site) <- frame.site_addr.(site);
          frame.site_addr.(site) <- addr;
          push frame (Heap.get_field heap id slot);
          next frame
    | Putfield { offset; name = _ } ->
        let slot = (offset - Classfile.header_bytes) / Classfile.slot_bytes in
        fun frame ->
          let v = pop frame in
          let id = as_ref frame (pop frame) in
          let addr = Heap.base_of heap id + offset in
          demand_plain t frame ~pc ~addr ~kind:`Store;
          Heap.set_field heap id slot v;
          next frame
    | Getstatic { site; index; name = _; is_ref = _ } ->
        let addr = Classfile.statics_base + (index * Classfile.slot_bytes) in
        fun frame ->
          demand_plain t frame ~pc ~addr ~kind:`Load;
          frame.site_prev.(site) <- frame.site_addr.(site);
          frame.site_addr.(site) <- addr;
          push frame t.globals.(index);
          next frame
    | Putstatic { index; name = _ } ->
        let addr = Classfile.statics_base + (index * Classfile.slot_bytes) in
        fun frame ->
          demand_plain t frame ~pc ~addr ~kind:`Store;
          t.globals.(index) <- pop frame;
          next frame
    | Aaload { len_site; elem_site } | Iaload { len_site; elem_site } ->
        fun frame ->
          let index = pop_int frame in
          let id = as_ref frame (pop frame) in
          let addr = array_access_plain t frame ~pc ~len_site ~id ~index in
          demand_plain t frame ~pc ~addr ~kind:`Load;
          frame.site_prev.(elem_site) <- frame.site_addr.(elem_site);
          frame.site_addr.(elem_site) <- addr;
          push frame (Heap.get_elem heap id index);
          next frame
    | Aastore { len_site } | Iastore { len_site } ->
        fun frame ->
          let v = pop frame in
          let index = pop_int frame in
          let id = as_ref frame (pop frame) in
          let addr = array_access_plain t frame ~pc ~len_site ~id ~index in
          demand_plain t frame ~pc ~addr ~kind:`Store;
          Heap.set_elem heap id index v;
          next frame
    | Arraylength { site } ->
        fun frame ->
          let id = as_ref frame (pop frame) in
          let addr = Heap.length_addr heap id in
          demand_plain t frame ~pc ~addr ~kind:`Load;
          frame.site_prev.(site) <- frame.site_addr.(site);
          frame.site_addr.(site) <- addr;
          push frame (Value.of_int (Heap.array_length heap id));
          next frame
    | New class_id ->
        let ci = Classfile.class_of_id t.program class_id in
        let alloc () = Heap.alloc_object heap ci in
        fun frame ->
          let id = allocate t frame ~pc alloc in
          push frame (Value.Ref id);
          next frame
    | Newarray kind ->
        fun frame ->
          let len = pop_int frame in
          if len < 0 then vm_error "negative array size in %s" method_name;
          let alloc () =
            match kind with
            | Bytecode.Int_array -> Heap.alloc_int_array heap len
            | Bytecode.Ref_array -> Heap.alloc_ref_array heap len
          in
          push frame (Value.Ref (allocate t frame ~pc alloc));
          next frame
    | Invoke callee_id ->
        let callee = Classfile.method_of_id t.program callee_id in
        fun frame ->
          let args = scratch_args t callee.arity in
          for i = callee.arity - 1 downto 0 do
            args.(i) <- pop frame
          done;
          (match call t callee args with
          | Some v -> push frame v
          | None -> ());
          next frame
    | Return -> fun _frame -> None
    | Ireturn | Areturn -> fun frame -> Some (pop frame)
    | Print ->
        fun frame ->
          let v = pop_int frame in
          Buffer.add_string t.out (string_of_int v);
          Buffer.add_char t.out '\n';
          next frame
    | Prefetch_inter { site; distance } ->
        fun frame ->
          let anchor = frame.site_addr.(site) in
          if anchor >= 0 then begin
            let addr = anchor + distance in
            audit_prefetch_addr t addr;
            Memsim.Hierarchy.sw_prefetch mem ~addr ~now:t.stats.cycles
          end;
          next frame
    | Spec_load { site; distance; reg } ->
        let unguarded = t.opts.unguarded_spec_loads in
        fun frame ->
          let anchor = frame.site_addr.(site) in
          if anchor >= 0 then begin
            let addr = anchor + distance in
            audit_prefetch_addr t addr;
            Memsim.Hierarchy.guarded_load mem ~addr ~now:t.stats.cycles;
            let v =
              match Heap.value_at heap addr with
              | Some v -> v
              | None ->
                  t.spec_guard_trips <- t.spec_guard_trips + 1;
                  if unguarded then begin
                    t.faulting_prefetches <- t.faulting_prefetches + 1;
                    vm_error
                      "unguarded spec_load faulted at address 0x%x in %s" addr
                      method_name
                  end;
                  Value.Null
            in
            frame.pref_regs.(reg) <- v
          end
          else frame.pref_regs.(reg) <- Value.Null;
          next frame
    | Prefetch_dynamic { site; times } ->
        fun frame ->
          let addr = frame.site_addr.(site) in
          let prev = frame.site_prev.(site) in
          if addr >= 0 && prev >= 0 && addr <> prev then begin
            let target = addr + ((addr - prev) * times) in
            audit_prefetch_addr t target;
            Memsim.Hierarchy.sw_prefetch mem ~addr:target ~now:t.stats.cycles
          end;
          next frame
    | Prefetch_indirect { reg; offset; guarded } ->
        fun frame ->
          (match frame.pref_regs.(reg) with
          | Value.Ref id when Heap.exists heap id ->
              let addr = Heap.base_of heap id + offset in
              audit_prefetch_addr t addr;
              if guarded then
                Memsim.Hierarchy.guarded_load mem ~addr ~now:t.stats.cycles
              else Memsim.Hierarchy.sw_prefetch mem ~addr ~now:t.stats.cycles
          | Value.Ref _ | Value.Int _ | Value.Null -> ());
          next frame
  in

  (* ---- top-of-stack caching within blocks ----

     Block chains additionally thread the topmost operand through a
     closure argument ([vhandler]) instead of the stack array whenever
     its position is statically known: blocks and branch targets are
     entered with the cache empty, each instruction is compiled against
     the compile-time cache state, and a cached value is spilled back
     exactly where the switch engine would have had it in the array —
     when the next instruction cannot consume it directly, at block
     exits, and before any allocation that does not consume it (the
     collector enumerates roots from [frame.stack], so a reference must
     never be cached across a GC point; [New] spills first, [Newarray]
     and [Invoke] consume the cache before allocating, and a zero-arity
     [Invoke] falls back to the spill adapter). Overflow and underflow
     tests compare the same logical depths at the same program points as
     the switch engine — a cached value counts one toward the logical
     depth — so every Stack_error fires identically.

     [body_empty] compiles an instruction whose entry cache is empty; it
     defers to [body] for every instruction that also exits empty.
     [body_full] returns [None] for instructions with no profitable
     full-cache form; [build] then inserts the spill adapter and
     compiles the empty-entry form, which is exact for any instruction
     (spilling merely materializes the logical stack). [exits_full] is
     the single source of truth for the post-state, shared by both
     paths. *)
  let exits_full (instr_ : Bytecode.instr) =
    match instr_ with
    | Iconst _ | Aconst_null | Iload _ | Aload _ | Dup | Iadd | Isub | Imul
    | Idiv | Irem | Ineg | Iand | Ior | Ixor | Ishl | Ishr | Getfield _
    | Getstatic _ | Aaload _ | Iaload _ | Arraylength _ | New _ | Newarray _
      ->
        true
    | _ -> false
  in
  let kh = function KH h -> h | KV _ -> assert false in
  let kv = function KV h -> h | KH _ -> assert false in
  let body_empty kont pc (instr_ : Bytecode.instr) : handler =
    match instr_ with
    | Iconst k ->
        let v = Value.of_int k in
        let nv = kv kont in
        fun frame ->
          if frame.sp >= Frame.max_stack then stack_overflow frame;
          nv frame v
    | Aconst_null ->
        let nv = kv kont in
        fun frame ->
          if frame.sp >= Frame.max_stack then stack_overflow frame;
          nv frame Value.Null
    | Iload i | Aload i ->
        let nv = kv kont in
        if i >= 0 && i < locals_len then
          fun frame ->
            if frame.sp >= Frame.max_stack then stack_overflow frame;
            nv frame (Array.unsafe_get frame.locals i)
        else
          fun frame ->
            let v = frame.locals.(i) in
            if frame.sp >= Frame.max_stack then stack_overflow frame;
            nv frame v
    | Dup ->
        let nv = kv kont in
        fun frame ->
          let v = peek frame in
          if frame.sp >= Frame.max_stack then stack_overflow frame;
          nv frame v
    | Iadd ->
        let nv = kv kont in
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          nv frame (Value.of_int (a + b))
    | Isub ->
        let nv = kv kont in
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          nv frame (Value.of_int (a - b))
    | Imul ->
        let nv = kv kont in
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          nv frame (Value.of_int (a * b))
    | Idiv ->
        let nv = kv kont in
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          if b = 0 then vm_error "division by zero in %s" method_name;
          nv frame (Value.of_int (a / b))
    | Irem ->
        let nv = kv kont in
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          if b = 0 then vm_error "division by zero in %s" method_name;
          nv frame (Value.of_int (a mod b))
    | Ineg ->
        let nv = kv kont in
        fun frame -> nv frame (Value.of_int (-pop_int frame))
    | Iand ->
        let nv = kv kont in
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          nv frame (Value.of_int (a land b))
    | Ior ->
        let nv = kv kont in
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          nv frame (Value.of_int (a lor b))
    | Ixor ->
        let nv = kv kont in
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          nv frame (Value.of_int (a lxor b))
    | Ishl ->
        let nv = kv kont in
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          nv frame (Value.of_int (a lsl (b land 63)))
    | Ishr ->
        let nv = kv kont in
        fun frame ->
          let b = pop_int frame in
          let a = pop_int frame in
          nv frame (Value.of_int (a asr (b land 63)))
    | Getfield { site; offset; name = _; is_ref = _ } ->
        let slot = (offset - Classfile.header_bytes) / Classfile.slot_bytes in
        let nv = kv kont in
        fun frame ->
          let id = as_ref frame (pop frame) in
          let addr = Heap.base_of heap id + offset in
          demand_plain t frame ~pc ~addr ~kind:`Load;
          frame.site_prev.(site) <- frame.site_addr.(site);
          frame.site_addr.(site) <- addr;
          nv frame (Heap.get_field heap id slot)
    | Getstatic { site; index; name = _; is_ref = _ } ->
        let addr = Classfile.statics_base + (index * Classfile.slot_bytes) in
        let nv = kv kont in
        fun frame ->
          demand_plain t frame ~pc ~addr ~kind:`Load;
          frame.site_prev.(site) <- frame.site_addr.(site);
          frame.site_addr.(site) <- addr;
          let v = t.globals.(index) in
          if frame.sp >= Frame.max_stack then stack_overflow frame;
          nv frame v
    | Aaload { len_site; elem_site } | Iaload { len_site; elem_site } ->
        let nv = kv kont in
        fun frame ->
          let index = pop_int frame in
          let id = as_ref frame (pop frame) in
          let addr = array_access_plain t frame ~pc ~len_site ~id ~index in
          demand_plain t frame ~pc ~addr ~kind:`Load;
          frame.site_prev.(elem_site) <- frame.site_addr.(elem_site);
          frame.site_addr.(elem_site) <- addr;
          nv frame (Heap.get_elem heap id index)
    | Arraylength { site } ->
        let nv = kv kont in
        fun frame ->
          let id = as_ref frame (pop frame) in
          let addr = Heap.length_addr heap id in
          demand_plain t frame ~pc ~addr ~kind:`Load;
          frame.site_prev.(site) <- frame.site_addr.(site);
          frame.site_addr.(site) <- addr;
          nv frame (Value.of_int (Heap.array_length heap id))
    | New class_id ->
        let ci = Classfile.class_of_id t.program class_id in
        let alloc () = Heap.alloc_object heap ci in
        let nv = kv kont in
        fun frame ->
          let id = allocate t frame ~pc alloc in
          if frame.sp >= Frame.max_stack then stack_overflow frame;
          nv frame (Value.Ref id)
    | Newarray kind ->
        let nv = kv kont in
        fun frame ->
          let len = pop_int frame in
          if len < 0 then vm_error "negative array size in %s" method_name;
          let alloc () =
            match kind with
            | Bytecode.Int_array -> Heap.alloc_int_array heap len
            | Bytecode.Ref_array -> Heap.alloc_ref_array heap len
          in
          nv frame (Value.Ref (allocate t frame ~pc alloc))
    | _ -> body ~next:(kh kont) pc instr_
  in
  let body_full kont pc (instr_ : Bytecode.instr) : vhandler option =
    match instr_ with
    | Istore i | Astore i ->
        let nh = kh kont in
        Some
          (if i >= 0 && i < locals_len then fun frame v ->
             Array.unsafe_set frame.locals i v;
             nh frame
           else fun frame v ->
             frame.locals.(i) <- v;
             nh frame)
    | Pop ->
        let nh = kh kont in
        Some (fun frame _v -> nh frame)
    | Dup ->
        let nv = kv kont in
        Some
          (fun frame v ->
            if frame.sp >= Frame.max_stack - 1 then stack_overflow frame;
            spill frame v;
            nv frame v)
    | Iadd ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let b = cached_int frame v in
            let a = pop_int frame in
            nv frame (Value.of_int (a + b)))
    | Isub ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let b = cached_int frame v in
            let a = pop_int frame in
            nv frame (Value.of_int (a - b)))
    | Imul ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let b = cached_int frame v in
            let a = pop_int frame in
            nv frame (Value.of_int (a * b)))
    | Idiv ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let b = cached_int frame v in
            let a = pop_int frame in
            if b = 0 then vm_error "division by zero in %s" method_name;
            nv frame (Value.of_int (a / b)))
    | Irem ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let b = cached_int frame v in
            let a = pop_int frame in
            if b = 0 then vm_error "division by zero in %s" method_name;
            nv frame (Value.of_int (a mod b)))
    | Ineg ->
        let nv = kv kont in
        Some (fun frame v -> nv frame (Value.of_int (-cached_int frame v)))
    | Iand ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let b = cached_int frame v in
            let a = pop_int frame in
            nv frame (Value.of_int (a land b)))
    | Ior ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let b = cached_int frame v in
            let a = pop_int frame in
            nv frame (Value.of_int (a lor b)))
    | Ixor ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let b = cached_int frame v in
            let a = pop_int frame in
            nv frame (Value.of_int (a lxor b)))
    | Ishl ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let b = cached_int frame v in
            let a = pop_int frame in
            nv frame (Value.of_int (a lsl (b land 63))))
    | Ishr ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let b = cached_int frame v in
            let a = pop_int frame in
            nv frame (Value.of_int (a asr (b land 63))))
    | If_icmp (c, target) -> (
        (* Specialized per comparison (like the empty-cache path): the
           cached back-edge compare is the hottest vhandler of all, and
           the generic [compare_int] helper goes through the polymorphic
           compare C call. *)
        let taken = taken_of ~pc target in
        let next = kh kont in
        match c with
        | Eq ->
            Some
              (fun frame v ->
                let b = cached_int frame v in
                let a = pop_int frame in
                if a = b then taken frame else next frame)
        | Ne ->
            Some
              (fun frame v ->
                let b = cached_int frame v in
                let a = pop_int frame in
                if a <> b then taken frame else next frame)
        | Lt ->
            Some
              (fun frame v ->
                let b = cached_int frame v in
                let a = pop_int frame in
                if a < b then taken frame else next frame)
        | Ge ->
            Some
              (fun frame v ->
                let b = cached_int frame v in
                let a = pop_int frame in
                if a >= b then taken frame else next frame)
        | Gt ->
            Some
              (fun frame v ->
                let b = cached_int frame v in
                let a = pop_int frame in
                if a > b then taken frame else next frame)
        | Le ->
            Some
              (fun frame v ->
                let b = cached_int frame v in
                let a = pop_int frame in
                if a <= b then taken frame else next frame))
    | If (c, target) -> (
        let taken = taken_of ~pc target in
        let next = kh kont in
        match c with
        | Eq ->
            Some
              (fun frame v ->
                if cached_int frame v = 0 then taken frame else next frame)
        | Ne ->
            Some
              (fun frame v ->
                if cached_int frame v <> 0 then taken frame else next frame)
        | Lt ->
            Some
              (fun frame v ->
                if cached_int frame v < 0 then taken frame else next frame)
        | Ge ->
            Some
              (fun frame v ->
                if cached_int frame v >= 0 then taken frame else next frame)
        | Gt ->
            Some
              (fun frame v ->
                if cached_int frame v > 0 then taken frame else next frame)
        | Le ->
            Some
              (fun frame v ->
                if cached_int frame v <= 0 then taken frame else next frame))
    | If_acmpeq target ->
        let taken = taken_of ~pc target in
        let next = kh kont in
        Some
          (fun frame v ->
            let a = pop frame in
            if Value.equal a v then taken frame else next frame)
    | If_acmpne target ->
        let taken = taken_of ~pc target in
        let next = kh kont in
        Some
          (fun frame v ->
            let a = pop frame in
            if not (Value.equal a v) then taken frame else next frame)
    | Ifnull target ->
        let taken = taken_of ~pc target in
        let next = kh kont in
        Some
          (fun frame v ->
            match v with Value.Null -> taken frame | _ -> next frame)
    | Ifnonnull target ->
        let taken = taken_of ~pc target in
        let next = kh kont in
        Some
          (fun frame v ->
            match v with Value.Null -> next frame | _ -> taken frame)
    | Getfield { site; offset; name = _; is_ref = _ } ->
        let slot = (offset - Classfile.header_bytes) / Classfile.slot_bytes in
        let nv = kv kont in
        Some
          (fun frame v ->
            let id = as_ref frame v in
            let addr = Heap.base_of heap id + offset in
            demand_plain t frame ~pc ~addr ~kind:`Load;
            frame.site_prev.(site) <- frame.site_addr.(site);
            frame.site_addr.(site) <- addr;
            nv frame (Heap.get_field heap id slot))
    | Putfield { offset; name = _ } ->
        let slot = (offset - Classfile.header_bytes) / Classfile.slot_bytes in
        let nh = kh kont in
        Some
          (fun frame v ->
            let id = as_ref frame (pop frame) in
            let addr = Heap.base_of heap id + offset in
            demand_plain t frame ~pc ~addr ~kind:`Store;
            Heap.set_field heap id slot v;
            nh frame)
    | Putstatic { index; name = _ } ->
        let addr = Classfile.statics_base + (index * Classfile.slot_bytes) in
        let nh = kh kont in
        Some
          (fun frame v ->
            demand_plain t frame ~pc ~addr ~kind:`Store;
            t.globals.(index) <- v;
            nh frame)
    | Aaload { len_site; elem_site } | Iaload { len_site; elem_site } ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let index = cached_int frame v in
            let id = as_ref frame (pop frame) in
            let addr = array_access_plain t frame ~pc ~len_site ~id ~index in
            demand_plain t frame ~pc ~addr ~kind:`Load;
            frame.site_prev.(elem_site) <- frame.site_addr.(elem_site);
            frame.site_addr.(elem_site) <- addr;
            nv frame (Heap.get_elem heap id index))
    | Aastore { len_site } | Iastore { len_site } ->
        let nh = kh kont in
        Some
          (fun frame v ->
            let index = pop_int frame in
            let id = as_ref frame (pop frame) in
            let addr = array_access_plain t frame ~pc ~len_site ~id ~index in
            demand_plain t frame ~pc ~addr ~kind:`Store;
            Heap.set_elem heap id index v;
            nh frame)
    | Arraylength { site } ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let id = as_ref frame v in
            let addr = Heap.length_addr heap id in
            demand_plain t frame ~pc ~addr ~kind:`Load;
            frame.site_prev.(site) <- frame.site_addr.(site);
            frame.site_addr.(site) <- addr;
            nv frame (Value.of_int (Heap.array_length heap id)))
    | Newarray kind ->
        let nv = kv kont in
        Some
          (fun frame v ->
            let len = cached_int frame v in
            if len < 0 then vm_error "negative array size in %s" method_name;
            let alloc () =
              match kind with
              | Bytecode.Int_array -> Heap.alloc_int_array heap len
              | Bytecode.Ref_array -> Heap.alloc_ref_array heap len
            in
            nv frame (Value.Ref (allocate t frame ~pc alloc)))
    | Invoke callee_id ->
        let callee = Classfile.method_of_id t.program callee_id in
        if callee.arity = 0 then None
        else
          let arity = callee.arity in
          let nh = kh kont in
          Some
            (fun frame v ->
              let args = scratch_args t arity in
              args.(arity - 1) <- v;
              for i = arity - 2 downto 0 do
                args.(i) <- pop frame
              done;
              (match call t callee args with
              | Some r -> push frame r
              | None -> ());
              nh frame)
    | Ireturn | Areturn -> Some (fun _frame v -> Some v)
    | Return -> Some (fun _frame _v -> None)
    | Print ->
        let nh = kh kont in
        Some
          (fun frame v ->
            let n = cached_int frame v in
            Buffer.add_string t.out (string_of_int n);
            Buffer.add_char t.out '\n';
            nh frame)
    | _ -> None
  in

  (* ---- instrumented variant: mirrors the switch engine's attributed
     path verbatim through the shared State helpers ---- *)
  let instr pc (instr_ : Bytecode.instr) : handler =
    let next = handlers.(pc + 1) in
    let bin = bin_of_instr instr_ in
    let method_id = m.method_id in
    match instr_ with
    | Iconst k ->
        let v = Value.of_int k in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          push frame v;
          next frame
    | Aconst_null ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          push frame Value.Null;
          next frame
    | Iload i | Aload i ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          push frame frame.locals.(i);
          next frame
    | Istore i | Astore i ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          frame.locals.(i) <- pop frame;
          next frame
    | Dup ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          push frame (peek frame);
          next frame
    | Pop ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          ignore (pop frame);
          next frame
    | Iadd ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a + b));
          next frame
    | Isub ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a - b));
          next frame
    | Imul ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a * b));
          next frame
    | Idiv ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop_int frame in
          let a = pop_int frame in
          if b = 0 then vm_error "division by zero in %s" method_name;
          push frame (Value.of_int (a / b));
          next frame
    | Irem ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop_int frame in
          let a = pop_int frame in
          if b = 0 then vm_error "division by zero in %s" method_name;
          push frame (Value.of_int (a mod b));
          next frame
    | Ineg ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          push frame (Value.of_int (-pop_int frame));
          next frame
    | Iand ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a land b));
          next frame
    | Ior ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a lor b));
          next frame
    | Ixor ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a lxor b));
          next frame
    | Ishl ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a lsl (b land 63)));
          next frame
    | Ishr ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop_int frame in
          let a = pop_int frame in
          push frame (Value.of_int (a asr (b land 63)));
          next frame
    | Goto target ->
        let taken = taken_of ~pc target in
        if goto_retired = 1 then
          fun frame ->
            pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
            taken frame
        else
          fun frame ->
            pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
            retire t 1;
            taken frame
    | If_icmp (c, target) ->
        let taken = taken_of ~pc target in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop_int frame in
          let a = pop_int frame in
          if icompare c a b then taken frame else next frame
    | If (c, target) ->
        let taken = taken_of ~pc target in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          if icompare c (pop_int frame) 0 then taken frame else next frame
    | If_acmpeq target ->
        let taken = taken_of ~pc target in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop frame in
          let a = pop frame in
          if Value.equal a b then taken frame else next frame
    | If_acmpne target ->
        let taken = taken_of ~pc target in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let b = pop frame in
          let a = pop frame in
          if not (Value.equal a b) then taken frame else next frame
    | Ifnull target ->
        let taken = taken_of ~pc target in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          (match pop frame with
          | Value.Null -> taken frame
          | _ -> next frame)
    | Ifnonnull target ->
        let taken = taken_of ~pc target in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          (match pop frame with
          | Value.Null -> next frame
          | _ -> taken frame)
    | Getfield { site; offset; name = _; is_ref = _ } ->
        let slot = (offset - Classfile.header_bytes) / Classfile.slot_bytes in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let id = as_ref frame (pop frame) in
          let addr = Heap.base_of heap id + offset in
          demand_load t frame ~pc ~obj:id ~addr ~site;
          observe_load t frame ~site ~addr;
          push frame (Heap.get_field heap id slot);
          next frame
    | Putfield { offset; name = _ } ->
        let slot = (offset - Classfile.header_bytes) / Classfile.slot_bytes in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let v = pop frame in
          let id = as_ref frame (pop frame) in
          let addr = Heap.base_of heap id + offset in
          demand t frame ~pc ~obj:id ~addr ~kind:`Store;
          Heap.set_field heap id slot v;
          next frame
    | Getstatic { site; index; name = _; is_ref = _ } ->
        let addr = Classfile.statics_base + (index * Classfile.slot_bytes) in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          demand_load t frame ~pc ~obj:(-1) ~addr ~site;
          observe_load t frame ~site ~addr;
          push frame t.globals.(index);
          next frame
    | Putstatic { index; name = _ } ->
        let addr = Classfile.statics_base + (index * Classfile.slot_bytes) in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          demand t frame ~pc ~obj:(-1) ~addr ~kind:`Store;
          t.globals.(index) <- pop frame;
          next frame
    | Aaload { len_site; elem_site } | Iaload { len_site; elem_site } ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          retire t 1;
          charge t frame base_cost;
          prof_cycles t ~method_id ~pc ~bin:Prof_retire ~cycles:base_cost;
          let index = pop_int frame in
          let id = as_ref frame (pop frame) in
          let addr = array_access t frame ~pc ~len_site ~id ~index in
          demand_load t frame ~pc ~obj:id ~addr ~site:elem_site;
          observe_load t frame ~site:elem_site ~addr;
          push frame (Heap.get_elem heap id index);
          next frame
    | Aastore { len_site } | Iastore { len_site } ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          retire t 1;
          charge t frame base_cost;
          prof_cycles t ~method_id ~pc ~bin:Prof_retire ~cycles:base_cost;
          let v = pop frame in
          let index = pop_int frame in
          let id = as_ref frame (pop frame) in
          let addr = array_access t frame ~pc ~len_site ~id ~index in
          demand t frame ~pc ~obj:id ~addr ~kind:`Store;
          Heap.set_elem heap id index v;
          next frame
    | Arraylength { site } ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let id = as_ref frame (pop frame) in
          let addr = Heap.length_addr heap id in
          demand_load t frame ~pc ~obj:id ~addr ~site;
          observe_load t frame ~site ~addr;
          push frame (Value.of_int (Heap.array_length heap id));
          next frame
    | New class_id ->
        let ci = Classfile.class_of_id t.program class_id in
        let alloc () = Heap.alloc_object heap ci in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let id = allocate t frame ~pc alloc in
          push frame (Value.Ref id);
          next frame
    | Newarray kind ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let len = pop_int frame in
          if len < 0 then vm_error "negative array size in %s" method_name;
          let alloc () =
            match kind with
            | Bytecode.Int_array -> Heap.alloc_int_array heap len
            | Bytecode.Ref_array -> Heap.alloc_ref_array heap len
          in
          push frame (Value.Ref (allocate t frame ~pc alloc));
          next frame
    | Invoke callee_id ->
        let callee = Classfile.method_of_id t.program callee_id in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let args = scratch_args t callee.arity in
          for i = callee.arity - 1 downto 0 do
            args.(i) <- pop frame
          done;
          (match call t callee args with
          | Some v -> push frame v
          | None -> ());
          next frame
    | Return ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          None
    | Ireturn | Areturn ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          Some (pop frame)
    | Print ->
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          let v = pop_int frame in
          Buffer.add_string t.out (string_of_int v);
          Buffer.add_char t.out '\n';
          next frame
    | Prefetch_inter { site; distance } ->
        let extra = max 0 (machine.prefetch_cost - base_cost) in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          charge t frame extra;
          if extra > 0 then
            prof_cycles t ~method_id ~pc ~bin:Prof_pf_overhead ~cycles:extra;
          let anchor = frame.site_addr.(site) in
          if anchor >= 0 then begin
            let addr = anchor + distance in
            audit_prefetch_addr t addr;
            match t.telem with
            | None -> Memsim.Hierarchy.sw_prefetch mem ~addr ~now:(now t)
            | Some tl ->
                let sid =
                  Telemetry.Attrib.site_id tl.registry
                    (Telemetry.Attrib.Inter_site { method_id; site })
                in
                Memsim.Hierarchy.sw_prefetch_attr mem ~attrib:tl.attrib ~addr
                  ~now:(now t) ~site:sid
          end;
          next frame
    | Spec_load { site; distance; reg } ->
        let extra = max 0 (machine.guarded_load_cost - base_cost) in
        let unguarded = t.opts.unguarded_spec_loads in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          charge t frame extra;
          if extra > 0 then
            prof_cycles t ~method_id ~pc ~bin:Prof_guard_overhead
              ~cycles:extra;
          let anchor = frame.site_addr.(site) in
          if anchor >= 0 then begin
            let addr = anchor + distance in
            audit_prefetch_addr t addr;
            (match t.telem with
            | None -> Memsim.Hierarchy.guarded_load mem ~addr ~now:(now t)
            | Some tl ->
                let sid =
                  Telemetry.Attrib.site_id tl.registry
                    (Telemetry.Attrib.Spec_site { method_id; site; reg })
                in
                Memsim.Hierarchy.guarded_load_attr mem ~attrib:tl.attrib
                  ~addr ~now:(now t) ~site:sid);
            let v =
              match Heap.value_at heap addr with
              | Some v -> v
              | None ->
                  t.spec_guard_trips <- t.spec_guard_trips + 1;
                  if unguarded then begin
                    t.faulting_prefetches <- t.faulting_prefetches + 1;
                    vm_error
                      "unguarded spec_load faulted at address 0x%x in %s" addr
                      method_name
                  end;
                  Value.Null
            in
            frame.pref_regs.(reg) <- v
          end
          else frame.pref_regs.(reg) <- Value.Null;
          next frame
    | Prefetch_dynamic { site; times } ->
        let extra = max 0 (machine.prefetch_cost - base_cost) in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          charge t frame extra;
          if extra > 0 then
            prof_cycles t ~method_id ~pc ~bin:Prof_pf_overhead ~cycles:extra;
          let addr = frame.site_addr.(site) in
          let prev = frame.site_prev.(site) in
          if addr >= 0 && prev >= 0 && addr <> prev then begin
            let target = addr + ((addr - prev) * times) in
            audit_prefetch_addr t target;
            match t.telem with
            | None ->
                Memsim.Hierarchy.sw_prefetch mem ~addr:target ~now:(now t)
            | Some tl ->
                let sid =
                  Telemetry.Attrib.site_id tl.registry
                    (Telemetry.Attrib.Dynamic_site { method_id; site })
                in
                Memsim.Hierarchy.sw_prefetch_attr mem ~attrib:tl.attrib
                  ~addr:target ~now:(now t) ~site:sid
          end;
          next frame
    | Prefetch_indirect { reg; offset; guarded } ->
        let full =
          if guarded then machine.guarded_load_cost else machine.prefetch_cost
        in
        let extra = max 0 (full - base_cost) in
        fun frame ->
          pre_i t m frame ~pc ~max_steps ~base_cost ~bin;
          charge t frame extra;
          if extra > 0 then prof_cycles t ~method_id ~pc ~bin ~cycles:extra;
          (match frame.pref_regs.(reg) with
          | Value.Ref id when Heap.exists heap id -> (
              let addr = Heap.base_of heap id + offset in
              audit_prefetch_addr t addr;
              match t.telem with
              | None ->
                  if guarded then
                    Memsim.Hierarchy.guarded_load mem ~addr ~now:(now t)
                  else Memsim.Hierarchy.sw_prefetch mem ~addr ~now:(now t)
              | Some tl ->
                  let sid =
                    Telemetry.Attrib.site_id tl.registry
                      (Telemetry.Attrib.Indirect_site { method_id; reg; offset })
                  in
                  if guarded then
                    Memsim.Hierarchy.guarded_load_attr mem ~attrib:tl.attrib
                      ~addr ~now:(now t) ~site:sid
                  else
                    Memsim.Hierarchy.sw_prefetch_attr mem ~attrib:tl.attrib
                      ~addr ~now:(now t) ~site:sid)
          | Value.Ref _ | Value.Int _ | Value.Null -> ());
          next frame
  in

  (* Backward fill: at pc, every handler above pc is already compiled, so
     fall-through captures its successor directly and forward branches
     bind their target handler without indirection. *)
  if cm_instrumented then
    for pc = n - 1 downto 0 do
      handlers.(pc) <- instr pc code.(pc)
    done
  else begin
    (* Block leaders: entry, every in-range branch target, and the
       instruction after any control transfer. *)
    let leaders = Array.make (n + 1) false in
    if n > 0 then leaders.(0) <- true;
    for pc = 0 to n - 1 do
      (match code.(pc) with
      | Goto target
      | If_icmp (_, target)
      | If (_, target)
      | If_acmpeq target
      | If_acmpne target
      | Ifnull target
      | Ifnonnull target ->
          if target >= 0 && target < n then leaders.(target) <- true
      | _ -> ());
      if is_terminator code.(pc) then leaders.(pc + 1) <- true
    done;
    (* Last pc of the block led by [s]: extends through straight-line
       instructions (memory accesses included — they only end a charge
       segment) and includes its control transfer; a straight-line run is
       also cut where the next pc is a leader (someone jumps there) or
       the code ends. *)
    let rec block_end j =
      if j >= n then n - 1
      else if is_terminator code.(j) then j
      else if leaders.(j + 1) then j
      else block_end (j + 1)
    in
    for pc = n - 1 downto 0 do
      (* The per-instruction handler: prologue fused with the body. Used
         directly for single-instruction blocks, and as the exact
         fallback chain when a batched budget test fires. *)
      let standalone =
        let b = body ~next:handlers.(pc + 1) pc code.(pc) in
        let retired = retired_of code.(pc) and cost = cost_of code.(pc) in
        fun frame ->
          pre t m ~max_steps ~retired ~cost;
          b frame
      in
      handlers.(pc) <- standalone;
      if leaders.(pc) then begin
        let e = block_end pc in
        if e > pc then begin
          let k = e - pc + 1 in
          let retired_k = ref 0 in
          for j = pc to e do
            retired_k := !retired_k + retired_of code.(j)
          done;
          let retired_k = !retired_k in
          (* Cost of the charge segment starting at [j]: every
             instruction up to and including the first cycle observer
             (or the block's end). *)
          let rec seg_cost j =
            let c = cost_of code.(j) in
            if j >= e || observes_cycles code.(j) then c
            else c + seg_cost (j + 1)
          in
          (* Commit one segment's cycles, preserving the cache state.
             Reads [m.compiled] at run time like the head does; every
             segment charge in a block runs before the block's only
             possible call (its terminator), so all of them see the
             value the head saw. *)
          let charged cost (kont : kont) : kont =
            match kont with
            | KH h ->
                KH
                  (fun frame ->
                    let stats = t.stats in
                    stats.cycles <- stats.cycles + cost;
                    if m.compiled then
                      t.compiled_cycles <- t.compiled_cycles + cost
                    else t.interpreted_cycles <- t.interpreted_cycles + cost;
                    h frame)
            | KV vh ->
                KV
                  (fun frame v ->
                    let stats = t.stats in
                    stats.cycles <- stats.cycles + cost;
                    if m.compiled then
                      t.compiled_cycles <- t.compiled_cycles + cost
                    else t.interpreted_cycles <- t.interpreted_cycles + cost;
                    vh frame v)
          in
          (* Compile the chain against the statically-tracked cache
             state: blocks are entered with the cache empty; a full exit
             state at the block's end (or an instruction with no
             full-cache form) gets the spill adapter. *)
          let rec build j ~full : kont =
            if j > e then
              if full then
                let succ = handlers.(e + 1) in
                KV
                  (fun frame v ->
                    spill frame v;
                    succ frame)
              else KH handlers.(e + 1)
            else
              let instr_ = code.(j) in
              let kont = build (j + 1) ~full:(exits_full instr_) in
              let kont =
                if j < e && observes_cycles instr_ then
                  charged (seg_cost (j + 1)) kont
                else kont
              in
              if full then
                KV
                  (match body_full kont j instr_ with
                  | Some vh -> vh
                  | None ->
                      let h = body_empty kont j instr_ in
                      fun frame v ->
                        spill frame v;
                        h frame)
              else KH (body_empty kont j instr_)
          in
          let first = kh (build pc ~full:false) in
          let cost_1 = seg_cost pc in
          handlers.(pc) <-
            (fun frame ->
              let steps = t.steps + k in
              if steps > max_steps then standalone frame
              else begin
                t.steps <- steps;
                let stats = t.stats in
                stats.retired_instructions <-
                  stats.retired_instructions + retired_k;
                stats.cycles <- stats.cycles + cost_1;
                if m.compiled then
                  t.compiled_cycles <- t.compiled_cycles + cost_1
                else t.interpreted_cycles <- t.interpreted_cycles + cost_1;
                first frame
              end)
        end
      end
    done
  end;
  { cm_code = code; cm_compiled; cm_instrumented; cm_handlers = handlers }

(* Fetch (compiling or recompiling as needed) the method's artifact. The
   three-way validation catches every way an artifact can go stale: the
   JIT swapped the body (fresh code array), the method's compiled flag
   flipped (different baked base cost), or the observer set changed
   (different specialization). *)
let get (t : t) (m : Classfile.method_info) =
  let id = m.method_id in
  match t.closure_cache.(id) with
  | Some cm
    when cm.cm_code == m.code
         && cm.cm_compiled = m.compiled
         && cm.cm_instrumented = instrumented t ->
      cm
  | _ ->
      let cm = compile t m in
      t.closure_cache.(id) <- Some cm;
      cm

let exec (t : t) (frame : Frame.t) =
  (get t frame.method_info).cm_handlers.(0) frame

let precompile (t : t) (m : Classfile.method_info) = ignore (get t m)
