(* The execution-engine facade.

   The shared interpreter state and step helpers live in [State]; the
   closure-compiled engine lives in [Engine]; this module keeps the
   public API stable, implements the reference {e switch} engine (the
   classic fetch/decode loop), and wires whichever engine
   [options.engine] selects into [State.engine_exec] at [create] time.

   The switch engine is the semantic reference: the closure engine must
   match it bit-for-bit on output, heap, and every stats counter
   (test/test_engine.ml; the fuzz oracle's engine axis). Keep the two in
   lockstep — any change to the loop below needs the mirrored change in
   [Engine.compile]. *)

open State

type engine = State.engine = Switch | Closure

type options = State.options = {
  machine : Memsim.Config.machine;
  heap_limit_bytes : int;
  hot_threshold : int;
  alloc_cycles : int;
  gc_cycles_per_live : int;
  gc_cycles_per_dead : int;
  max_steps : int;
  unguarded_spec_loads : bool;
  engine : engine;
  fault_engine_desync : bool;
  fault_hw_desync : bool;
  fault_monitor_desync : bool;
}

let default_options = State.default_options
let engine_name = function Switch -> "switch" | Closure -> "closure"

let engine_of_string = function
  | "switch" -> Some Switch
  | "closure" -> Some Closure
  | _ -> None

type prof_bin = State.prof_bin =
  | Prof_retire
  | Prof_alloc
  | Prof_pf_overhead
  | Prof_guard_overhead

type profile_hooks = State.profile_hooks = {
  on_cycles : method_id:int -> pc:int -> bin:prof_bin -> cycles:int -> unit;
  on_stall :
    method_id:int ->
    pc:int ->
    obj:int ->
    tlb:int ->
    l1:int ->
    l2:int ->
    mem:int ->
    unit;
  on_alloc : obj:int -> method_id:int -> pc:int -> bytes:int -> unit;
  on_gc : cycles:int -> unit;
}

type t = State.t

exception Vm_error = State.Vm_error
exception Budget_exhausted = State.Budget_exhausted

let program (t : t) = t.program
let heap (t : t) = t.heap
let memory (t : t) = t.mem
let stats (t : t) = t.stats
let options (t : t) = t.opts
let output (t : t) = Buffer.contents t.out
let global (t : t) index = t.globals.(index)
let set_compile_hook (t : t) hook = t.compile_hook <- Some hook
let set_load_observer (t : t) f = t.load_observer <- Some f
let gc_count (t : t) = t.gc_count
let gc_cycles (t : t) = t.gc_cycles
let interpreted_cycles (t : t) = t.interpreted_cycles
let compiled_cycles (t : t) = t.compiled_cycles
let faulting_prefetches (t : t) = t.faulting_prefetches
let spec_guard_trips (t : t) = t.spec_guard_trips
let steps (t : t) = t.steps
let output_bytes (t : t) = Buffer.length t.out
let set_telemetry = State.set_telemetry
let set_profile = State.set_profile
let set_monitor = State.set_monitor
let combine_profile_hooks = State.combine_profile_hooks
let attribution = State.attribution
let finalize_telemetry = State.finalize_telemetry
let call = State.call
let run = State.run

(* The reference switch engine: one fetch/decode loop iteration per
   instruction. [Invoke] recurses through [State.call], which dispatches
   the callee through whichever engine is wired — the engines compose. *)
let exec_switch (t : t) (frame : Frame.t) =
  let m = frame.method_info in
  let code = m.code in
  let n = Array.length code in
  let base_cost =
    if m.compiled then t.opts.machine.compiled_cost
    else t.opts.machine.interp_cost
  in
  let result = ref None in
  let running = ref true in
  while !running do
    if frame.pc < 0 || frame.pc >= n then
      vm_error "pc %d out of bounds in %s" frame.pc m.method_name;
    t.steps <- t.steps + 1;
    if t.steps > t.opts.max_steps then
      raise (Budget_exhausted t.opts.max_steps);
    let pc = frame.pc in
    let instr = code.(pc) in
    frame.pc <- pc + 1;
    retire t 1;
    charge t frame base_cost;
    (* The base slot of a prefetch-type instruction is itself overhead
       the optimization added — it bins as pf/guard overhead, not
       retire, so the profiler's overhead bins carry the full cost of
       the pass's inserted code. The classifying match only runs when a
       profiler is installed. *)
    (match t.prof with
    | Some p ->
        p.on_cycles ~method_id:m.method_id ~pc ~bin:(bin_of_instr instr)
          ~cycles:base_cost
    | None -> ());
    (match instr with
    | Iconst k -> Frame.push frame (Value.Int k)
    | Aconst_null -> Frame.push frame Value.Null
    | Iload i | Aload i -> Frame.push frame frame.locals.(i)
    | Istore i | Astore i -> frame.locals.(i) <- Frame.pop frame
    | Dup -> Frame.push frame (Frame.peek frame)
    | Pop -> ignore (Frame.pop frame)
    | Iadd ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a + b))
    | Isub ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a - b))
    | Imul ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a * b))
    | Idiv ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        if b = 0 then vm_error "division by zero in %s" m.method_name;
        Frame.push frame (Value.Int (a / b))
    | Irem ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        if b = 0 then vm_error "division by zero in %s" m.method_name;
        Frame.push frame (Value.Int (a mod b))
    | Ineg -> Frame.push frame (Value.Int (-Frame.pop_int frame))
    | Iand ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a land b))
    | Ior ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a lor b))
    | Ixor ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a lxor b))
    | Ishl ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a lsl (b land 63)))
    | Ishr ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a asr (b land 63)))
    | Goto target ->
        if target <= pc then m.backedges <- m.backedges + 1;
        frame.pc <- target
    | If_icmp (c, target) ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        if compare_int c a b then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | If (c, target) ->
        let a = Frame.pop_int frame in
        if compare_int c a 0 then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | If_acmpeq target ->
        let b = Frame.pop frame and a = Frame.pop frame in
        if Value.equal a b then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | If_acmpne target ->
        let b = Frame.pop frame and a = Frame.pop frame in
        if not (Value.equal a b) then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | Ifnull target ->
        if Frame.pop frame = Value.Null then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | Ifnonnull target ->
        if Frame.pop frame <> Value.Null then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | Getfield { site; offset; name = _; is_ref = _ } ->
        let id = as_ref frame (Frame.pop frame) in
        let addr = Heap.base_of t.heap id + offset in
        demand_load t frame ~pc:(frame.pc - 1) ~obj:id ~addr ~site;
        observe_load t frame ~site ~addr;
        let slot = (offset - Classfile.header_bytes) / Classfile.slot_bytes in
        Frame.push frame (Heap.get_field t.heap id slot)
    | Putfield { offset; name = _ } ->
        let v = Frame.pop frame in
        let id = as_ref frame (Frame.pop frame) in
        let addr = Heap.base_of t.heap id + offset in
        demand t frame ~pc:(frame.pc - 1) ~obj:id ~addr ~kind:`Store;
        let slot = (offset - Classfile.header_bytes) / Classfile.slot_bytes in
        Heap.set_field t.heap id slot v
    | Getstatic { site; index; name = _; is_ref = _ } ->
        let addr = Classfile.statics_base + (index * Classfile.slot_bytes) in
        demand_load t frame ~pc:(frame.pc - 1) ~obj:(-1) ~addr ~site;
        observe_load t frame ~site ~addr;
        Frame.push frame t.globals.(index)
    | Putstatic { index; name = _ } ->
        let addr = Classfile.statics_base + (index * Classfile.slot_bytes) in
        demand t frame ~pc:(frame.pc - 1) ~obj:(-1) ~addr ~kind:`Store;
        t.globals.(index) <- Frame.pop frame
    | Aaload { len_site; elem_site } | Iaload { len_site; elem_site } ->
        retire t 1;
        charge t frame base_cost;
        prof_cycles t ~method_id:m.method_id ~pc ~bin:Prof_retire
          ~cycles:base_cost;
        let index = Frame.pop_int frame in
        let id = as_ref frame (Frame.pop frame) in
        let addr = array_access t frame ~pc:(frame.pc - 1) ~len_site ~id ~index in
        demand_load t frame ~pc:(frame.pc - 1) ~obj:id ~addr ~site:elem_site;
        observe_load t frame ~site:elem_site ~addr;
        Frame.push frame (Heap.get_elem t.heap id index)
    | Aastore { len_site } | Iastore { len_site } ->
        retire t 1;
        charge t frame base_cost;
        prof_cycles t ~method_id:m.method_id ~pc ~bin:Prof_retire
          ~cycles:base_cost;
        let v = Frame.pop frame in
        let index = Frame.pop_int frame in
        let id = as_ref frame (Frame.pop frame) in
        let addr = array_access t frame ~pc:(frame.pc - 1) ~len_site ~id ~index in
        demand t frame ~pc:(frame.pc - 1) ~obj:id ~addr ~kind:`Store;
        Heap.set_elem t.heap id index v
    | Arraylength { site } ->
        let id = as_ref frame (Frame.pop frame) in
        let addr = Heap.length_addr t.heap id in
        demand_load t frame ~pc:(frame.pc - 1) ~obj:id ~addr ~site;
        observe_load t frame ~site ~addr;
        Frame.push frame (Value.Int (Heap.array_length t.heap id))
    | New class_id ->
        let ci = Classfile.class_of_id t.program class_id in
        let id = allocate t frame ~pc:(frame.pc - 1) (fun () -> Heap.alloc_object t.heap ci) in
        Frame.push frame (Value.Ref id)
    | Newarray kind ->
        let len = Frame.pop_int frame in
        if len < 0 then vm_error "negative array size in %s" m.method_name;
        let alloc () =
          match kind with
          | Bytecode.Int_array -> Heap.alloc_int_array t.heap len
          | Bytecode.Ref_array -> Heap.alloc_ref_array t.heap len
        in
        Frame.push frame (Value.Ref (allocate t frame ~pc:(frame.pc - 1) alloc))
    | Invoke callee_id ->
        let callee = Classfile.method_of_id t.program callee_id in
        let args = Array.make callee.arity Value.Null in
        for i = callee.arity - 1 downto 0 do
          args.(i) <- Frame.pop frame
        done;
        (match call t callee args with
        | Some v -> Frame.push frame v
        | None -> ())
    | Return -> running := false
    | Ireturn | Areturn ->
        result := Some (Frame.pop frame);
        running := false
    | Print ->
        let v = Frame.pop_int frame in
        Buffer.add_string t.out (string_of_int v);
        Buffer.add_char t.out '\n'
    | Prefetch_inter { site; distance } ->
        let extra = max 0 (t.opts.machine.prefetch_cost - base_cost) in
        charge t frame extra;
        if extra > 0 then
          prof_cycles t ~method_id:m.method_id ~pc ~bin:Prof_pf_overhead
            ~cycles:extra;
        let anchor = frame.site_addr.(site) in
        if anchor >= 0 then begin
          let addr = anchor + distance in
          audit_prefetch_addr t addr;
          match t.telem with
          | None -> Memsim.Hierarchy.sw_prefetch t.mem ~addr ~now:(now t)
          | Some tl ->
              let sid =
                Telemetry.Attrib.site_id tl.registry
                  (Telemetry.Attrib.Inter_site
                     { method_id = m.method_id; site })
              in
              Memsim.Hierarchy.sw_prefetch_attr t.mem ~attrib:tl.attrib
                ~addr ~now:(now t) ~site:sid
        end
    | Spec_load { site; distance; reg } ->
        let extra = max 0 (t.opts.machine.guarded_load_cost - base_cost) in
        charge t frame extra;
        if extra > 0 then
          prof_cycles t ~method_id:m.method_id ~pc ~bin:Prof_guard_overhead
            ~cycles:extra;
        let anchor = frame.site_addr.(site) in
        if anchor >= 0 then begin
          let addr = anchor + distance in
          audit_prefetch_addr t addr;
          (match t.telem with
          | None -> Memsim.Hierarchy.guarded_load t.mem ~addr ~now:(now t)
          | Some tl ->
              let sid =
                Telemetry.Attrib.site_id tl.registry
                  (Telemetry.Attrib.Spec_site
                     { method_id = m.method_id; site; reg })
              in
              Memsim.Hierarchy.guarded_load_attr t.mem ~attrib:tl.attrib
                ~addr ~now:(now t) ~site:sid);
          let v =
            match Heap.value_at t.heap addr with
            | Some v -> v
            | None ->
                (* The guard: a speculative load whose address fell outside
                   every live object yields Null instead of faulting
                   (Section 3.3's "loads guarded by software exception
                   checks"). [unguarded_spec_loads] disables the guard to
                   let the fuzzing oracle prove it would catch the
                   resulting fault. *)
                t.spec_guard_trips <- t.spec_guard_trips + 1;
                if t.opts.unguarded_spec_loads then begin
                  t.faulting_prefetches <- t.faulting_prefetches + 1;
                  vm_error
                    "unguarded spec_load faulted at address 0x%x in %s" addr
                    frame.Frame.method_info.method_name
                end;
                Value.Null
          in
          frame.pref_regs.(reg) <- v
        end
        else frame.pref_regs.(reg) <- Value.Null
    | Prefetch_dynamic { site; times } ->
        let extra = max 0 (t.opts.machine.prefetch_cost - base_cost) in
        charge t frame extra;
        if extra > 0 then
          prof_cycles t ~method_id:m.method_id ~pc ~bin:Prof_pf_overhead
            ~cycles:extra;
        let addr = frame.site_addr.(site) and prev = frame.site_prev.(site) in
        if addr >= 0 && prev >= 0 && addr <> prev then begin
          let target = addr + ((addr - prev) * times) in
          audit_prefetch_addr t target;
          match t.telem with
          | None -> Memsim.Hierarchy.sw_prefetch t.mem ~addr:target ~now:(now t)
          | Some tl ->
              let sid =
                Telemetry.Attrib.site_id tl.registry
                  (Telemetry.Attrib.Dynamic_site
                     { method_id = m.method_id; site })
              in
              Memsim.Hierarchy.sw_prefetch_attr t.mem ~attrib:tl.attrib
                ~addr:target ~now:(now t) ~site:sid
        end
    | Prefetch_indirect { reg; offset; guarded } ->
        let cost =
          if guarded then t.opts.machine.guarded_load_cost
          else t.opts.machine.prefetch_cost
        in
        let extra = max 0 (cost - base_cost) in
        charge t frame extra;
        if extra > 0 then
          prof_cycles t ~method_id:m.method_id ~pc
            ~bin:(if guarded then Prof_guard_overhead else Prof_pf_overhead)
            ~cycles:extra;
        (match frame.pref_regs.(reg) with
        | Value.Ref id when Heap.exists t.heap id -> (
            let addr = Heap.base_of t.heap id + offset in
            audit_prefetch_addr t addr;
            match t.telem with
            | None ->
                if guarded then
                  Memsim.Hierarchy.guarded_load t.mem ~addr ~now:(now t)
                else Memsim.Hierarchy.sw_prefetch t.mem ~addr ~now:(now t)
            | Some tl ->
                let sid =
                  Telemetry.Attrib.site_id tl.registry
                    (Telemetry.Attrib.Indirect_site
                       { method_id = m.method_id; reg; offset })
                in
                if guarded then
                  Memsim.Hierarchy.guarded_load_attr t.mem ~attrib:tl.attrib
                    ~addr ~now:(now t) ~site:sid
                else
                  Memsim.Hierarchy.sw_prefetch_attr t.mem ~attrib:tl.attrib
                    ~addr ~now:(now t) ~site:sid)
        | Value.Ref _ | Value.Int _ | Value.Null -> ()));
    ()
  done;
  !result

let create ?options machine program =
  let t = State.make ?options machine program in
  (t.engine_exec <-
     (match t.opts.engine with
     | Switch -> exec_switch
     | Closure -> Engine.exec));
  t

let precompile_method (t : t) (m : Classfile.method_info) =
  match t.opts.engine with
  | Closure -> Engine.precompile t m
  | Switch -> ()
