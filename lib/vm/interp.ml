type options = {
  machine : Memsim.Config.machine;
  heap_limit_bytes : int;
  hot_threshold : int;
  alloc_cycles : int;
  gc_cycles_per_live : int;
  gc_cycles_per_dead : int;
  max_steps : int;
  unguarded_spec_loads : bool;
}

let default_options machine =
  {
    machine;
    heap_limit_bytes = 64 * 1024 * 1024;
    hot_threshold = 2;
    alloc_cycles = 4;
    gc_cycles_per_live = 10;
    gc_cycles_per_dead = 2;
    max_steps = 2_000_000_000;
    unguarded_spec_loads = false;
  }

(* Telemetry wiring, bundled so the disabled state is a single [None]
   test on the hot paths. [attrib] is memsim's int-keyed effectiveness
   table; [registry] maps the interpreter's structural prefetch-site
   keys to the dense ids [attrib] speaks; [tsink] (optional even when
   attribution is on) receives GC spans. *)
type telemetry = {
  attrib : Memsim.Attribution.t;
  registry : Telemetry.Attrib.t;
  tsink : Telemetry.Sink.t option;
}

(* Profiler wiring: a record of observer closures installed by the
   profiling layer (lib/profile). The interpreter reports every cycle it
   charges to exactly one hook call, so a collector that sums what it is
   handed reconstructs [Stats.cycles] exactly — the profiler's
   conservation law. Hooks observe only: a profiled run is bit-identical
   to a plain one (fuzz-checked). Profiling requires telemetry (the
   stall breakdown is maintained by the hierarchy's [_attr] path). *)
type prof_bin = Prof_retire | Prof_alloc | Prof_pf_overhead | Prof_guard_overhead

type profile_hooks = {
  on_cycles : method_id:int -> pc:int -> bin:prof_bin -> cycles:int -> unit;
      (** non-stall charges: base instruction slots, allocation cost and
          the incremental cost of prefetch-type instructions *)
  on_stall :
    method_id:int -> pc:int -> obj:int -> tlb:int -> l1:int -> l2:int ->
    mem:int -> unit;
      (** a demand access stalled; [tlb+l1+l2+mem] is the full stall.
          [obj] is the referenced heap object id, or [-1] (statics /
          unknown). *)
  on_alloc : obj:int -> method_id:int -> pc:int -> bytes:int -> unit;
      (** a new object: records its allocation site for object-centric
          profiles *)
  on_gc : cycles:int -> unit;  (** one collection's cycle bill *)
}

type t = {
  program : Classfile.program;
  heap : Heap.t;
  mem : Memsim.Hierarchy.t;
  stats : Memsim.Stats.t;
      (** [Hierarchy.stats mem], hoisted: the record's identity is stable
          across [Hierarchy.reset] (the counters are reset in place), so
          [charge]/[retire] can update it without re-fetching it from the
          hierarchy on every instruction. *)
  opts : options;
  globals : Value.t array;
  out : Buffer.t;
  frame_pool : Frame.t list array;
      (** per-method free list of frames; [call] recycles activation
          records instead of allocating locals/stack/site arrays anew *)
  mutable frames : Frame.t list;
  mutable compile_hook :
    (t -> Classfile.method_info -> Value.t array -> unit) option;
  mutable load_observer :
    (method_id:int -> site:int -> addr:int -> unit) option;
  mutable gc_count : int;
  mutable gc_cycles : int;
  mutable interpreted_cycles : int;
  mutable compiled_cycles : int;
  mutable steps : int;
  mutable faulting_prefetches : int;
      (** prefetch-type operations that computed an address outside the
          simulated address space (negative) — always a codegen bug *)
  mutable spec_guard_trips : int;
      (** spec_loads whose target fell outside every live object: the
          guard fired and [Null] was substituted (benign by design) *)
  mutable telem : telemetry option;
      (** [None] (the default) selects the plain hierarchy entry points:
          telemetry off costs one immediate-constant test per access *)
  mutable prof : profile_hooks option;
      (** [None] (the default) disables profiling: off costs one
          immediate-constant test per charge site *)
}

exception Vm_error of string

let create ?options machine program =
  let opts =
    match options with Some o -> o | None -> default_options machine
  in
  let mem = Memsim.Hierarchy.create machine in
  {
    program;
    heap = Heap.create ~limit_bytes:opts.heap_limit_bytes ();
    mem;
    stats = Memsim.Hierarchy.stats mem;
    opts;
    globals = Array.make (max 1 (Array.length program.statics)) Value.Null;
    out = Buffer.create 256;
    frame_pool = Array.make (max 1 (Array.length program.methods)) [];
    frames = [];
    compile_hook = None;
    load_observer = None;
    gc_count = 0;
    gc_cycles = 0;
    interpreted_cycles = 0;
    compiled_cycles = 0;
    steps = 0;
    faulting_prefetches = 0;
    spec_guard_trips = 0;
    telem = None;
    prof = None;
  }

let program t = t.program
let heap t = t.heap
let memory t = t.mem
let stats t = t.stats
let options t = t.opts
let output t = Buffer.contents t.out
let global t index = t.globals.(index)
let set_compile_hook t hook = t.compile_hook <- Some hook
let set_load_observer t f = t.load_observer <- Some f
let gc_count t = t.gc_count
let gc_cycles t = t.gc_cycles
let interpreted_cycles t = t.interpreted_cycles
let compiled_cycles t = t.compiled_cycles
let faulting_prefetches t = t.faulting_prefetches
let spec_guard_trips t = t.spec_guard_trips

let set_telemetry t ~registry ?sink () =
  let attrib = Memsim.Attribution.create () in
  (match sink with
  | Some s ->
      Telemetry.Sink.set_cycle_source s (fun () -> t.stats.cycles)
  | None -> ());
  t.telem <- Some { attrib; registry; tsink = sink }

let set_profile t hooks =
  if t.telem = None then
    invalid_arg
      "Interp.set_profile: profiling requires telemetry (call set_telemetry \
       first; the stall breakdown lives on the attributed hierarchy path)";
  t.prof <- Some hooks

let attribution t =
  match t.telem with Some tl -> Some tl.attrib | None -> None

let finalize_telemetry t =
  match t.telem with
  | Some tl -> Memsim.Attribution.flush tl.attrib
  | None -> ()

(* Every address a prefetch-type instruction computes flows through here;
   a negative address can only come from broken distance/offset arithmetic
   in the prefetch pass, so the differential oracle asserts the counter
   stays zero. *)
let audit_prefetch_addr t addr =
  if addr < 0 then t.faulting_prefetches <- t.faulting_prefetches + 1

let vm_error fmt = Printf.ksprintf (fun msg -> raise (Vm_error msg)) fmt

let charge t (frame : Frame.t) cycles =
  let stats = t.stats in
  stats.cycles <- stats.cycles + cycles;
  if frame.method_info.compiled then
    t.compiled_cycles <- t.compiled_cycles + cycles
  else t.interpreted_cycles <- t.interpreted_cycles + cycles

let charge_stall t (frame : Frame.t) cycles =
  t.stats.stall_cycles <- t.stats.stall_cycles + cycles;
  charge t frame cycles

let retire t n =
  t.stats.retired_instructions <- t.stats.retired_instructions + n

let now t = t.stats.cycles

let observe_load t (frame : Frame.t) ~site ~addr =
  frame.site_prev.(site) <- frame.site_addr.(site);
  frame.site_addr.(site) <- addr;
  match t.load_observer with
  | Some f -> f ~method_id:frame.method_info.method_id ~site ~addr
  | None -> ()

(* Report a stalled demand access to the profiler. The attributing pc is
   [frame.pc - 1]: every memory-access handler runs after the dispatch
   loop advanced [frame.pc] past the instruction and none of them
   branches first, so this is the pc of the instruction being executed.
   The four components are read back from the hierarchy's breakdown of
   the access that just returned [stall]; they sum to it exactly. *)
let[@inline never] prof_stall t p (frame : Frame.t) ~obj ~stall:_ =
  p.on_stall ~method_id:frame.method_info.method_id ~pc:(frame.pc - 1) ~obj
    ~tlb:(Memsim.Hierarchy.last_tlb_stall t.mem)
    ~l1:(Memsim.Hierarchy.last_l1_stall t.mem)
    ~l2:(Memsim.Hierarchy.last_l2_stall t.mem)
    ~mem:(Memsim.Hierarchy.last_mem_stall t.mem)

(* Report a non-stall cycle charge ([bin] at [pc]) to the profiler.
   Kept out of line so the disabled state costs one immediate test. *)
let[@inline] prof_cycles t ~method_id ~pc ~bin ~cycles =
  match t.prof with
  | Some p -> p.on_cycles ~method_id ~pc ~bin ~cycles
  | None -> ()

let demand t frame ~obj ~addr ~kind =
  let stall =
    match t.telem with
    | None -> Memsim.Hierarchy.demand_access t.mem ~addr ~kind ~now:(now t)
    | Some tl ->
        let stall =
          Memsim.Hierarchy.demand_access_attr t.mem ~attrib:tl.attrib ~addr
            ~kind ~now:(now t) ~dkey:(-1)
        in
        (match t.prof with
        | Some p when stall > 0 -> prof_stall t p frame ~obj ~stall
        | Some _ | None -> ());
        stall
  in
  if stall > 0 then charge_stall t frame stall

(* A demand load at a numbered load site. Under telemetry its memory
   misses are bucketed by the packed (method, site) key — the coverage
   denominator for prefetches registered against that site. *)
let demand_load t (frame : Frame.t) ~obj ~addr ~site =
  let stall =
    match t.telem with
    | None ->
        Memsim.Hierarchy.demand_access t.mem ~addr ~kind:`Load ~now:(now t)
    | Some tl ->
        let dkey =
          Telemetry.Attrib.demand_key ~method_id:frame.method_info.method_id
            ~site
        in
        let stall =
          Memsim.Hierarchy.demand_access_attr t.mem ~attrib:tl.attrib ~addr
            ~kind:`Load ~now:(now t) ~dkey
        in
        (match t.prof with
        | Some p when stall > 0 -> prof_stall t p frame ~obj ~stall
        | Some _ | None -> ());
        stall
  in
  if stall > 0 then charge_stall t frame stall

let collect_garbage t =
  let ts_us, cycles_begin =
    match t.telem with
    | Some { tsink = Some s; _ } -> (Telemetry.Sink.now_us s, t.stats.cycles)
    | _ -> (0.0, 0)
  in
  let roots =
    List.concat_map Frame.roots t.frames
    @ Array.to_list t.globals
  in
  let result = Gc_compact.collect t.heap ~roots in
  t.gc_count <- t.gc_count + 1;
  let cycles =
    (result.live * t.opts.gc_cycles_per_live)
    + (result.collected * t.opts.gc_cycles_per_dead)
  in
  t.gc_cycles <- t.gc_cycles + cycles;
  t.stats.cycles <- t.stats.cycles + cycles;
  (match t.prof with Some p -> p.on_gc ~cycles | None -> ());
  (* Compaction rewrites the simulated address space: flush the hierarchy
     but keep the accumulated counters. [Stats.copy_into] owns the field
     list, so a newly added counter cannot silently desync here. *)
  let saved = Memsim.Stats.copy t.stats in
  Memsim.Hierarchy.reset t.mem;
  Memsim.Stats.copy_into saved ~into:t.stats;
  match t.telem with
  | None -> ()
  | Some tl ->
      (* The shadow tables speak pre-compaction line indices: any fill
         still untracked is useless by definition now. *)
      Memsim.Attribution.flush tl.attrib;
      (match tl.tsink with
      | Some s ->
          Telemetry.Sink.add_span s ~cat:"gc" ~name:"gc"
            ~args:
              [
                ("live", Telemetry.Json.Int result.live);
                ("collected", Telemetry.Json.Int result.collected);
                ("gc_count", Telemetry.Json.Int t.gc_count);
                ("gc_cycles", Telemetry.Json.Int cycles);
              ]
            ~ts_us
            ~dur_us:(Telemetry.Sink.now_us s -. ts_us)
            ~cycles_begin ~cycles_end:t.stats.cycles ()
      | None -> ())

let allocate t frame alloc =
  let id =
    try alloc ()
    with Heap.Out_of_memory -> (
      collect_garbage t;
      try alloc ()
      with Heap.Out_of_memory -> vm_error "heap exhausted after collection")
  in
  charge t frame t.opts.alloc_cycles;
  (* Record the allocation site {e before} the header write so the
     write's stall can already be attributed to the new object. *)
  (match t.prof with
  | Some p ->
      let method_id = frame.Frame.method_info.method_id in
      let pc = frame.Frame.pc - 1 in
      p.on_alloc ~obj:id ~method_id ~pc ~bytes:(Heap.size_of t.heap id);
      p.on_cycles ~method_id ~pc ~bin:Prof_alloc ~cycles:t.opts.alloc_cycles
  | None -> ());
  (* The header write warms the first line of the new object. *)
  demand t frame ~obj:id ~addr:(Heap.base_of t.heap id) ~kind:`Store;
  id

let as_ref frame v =
  match v with
  | Value.Ref id -> id
  | Value.Null ->
      vm_error "null pointer dereference in %s"
        frame.Frame.method_info.method_name
  | Value.Int _ ->
      vm_error "integer used as reference in %s"
        frame.Frame.method_info.method_name

let compare_int (c : Bytecode.cmp) a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Gt -> a > b
  | Le -> a <= b

(* Load the array length (bounds-check load), verify the index, and return
   the element address. Charges the length-load access. *)
let array_access t frame ~len_site ~id ~index =
  let len_addr = Heap.length_addr t.heap id in
  demand_load t frame ~obj:id ~addr:len_addr ~site:len_site;
  observe_load t frame ~site:len_site ~addr:len_addr;
  let len = Heap.array_length t.heap id in
  if index < 0 || index >= len then
    vm_error "array index %d out of bounds [0,%d) in %s" index len
      frame.Frame.method_info.method_name;
  Heap.elem_addr t.heap id index

let maybe_compile t (m : Classfile.method_info) args =
  if (not m.compiled) && m.invocations >= t.opts.hot_threshold then
    match t.compile_hook with
    | Some hook ->
        (* Mark first: the hook may recursively execute nothing, but a
           failed compilation should not retrigger on every call. *)
        m.compiled <- true;
        hook t m args
    | None -> ()

(* Acquire an activation record, recycling one from the per-method pool
   when its shape still matches (the JIT may have swapped the method body,
   invalidating pooled frames — [Frame.reusable] checks). *)
let acquire_frame t (m : Classfile.method_info) ~args =
  match t.frame_pool.(m.method_id) with
  | frame :: rest when Frame.reusable frame m ->
      t.frame_pool.(m.method_id) <- rest;
      Frame.reset frame ~args;
      frame
  | _ :: _ ->
      (* Stale shape: drop the whole pool for this method. *)
      t.frame_pool.(m.method_id) <- [];
      Frame.create m ~args
  | [] -> Frame.create m ~args

let release_frame t (frame : Frame.t) =
  let id = frame.method_info.method_id in
  t.frame_pool.(id) <- frame :: t.frame_pool.(id)

let pop_frames t =
  match t.frames with _ :: rest -> t.frames <- rest | [] -> ()

let rec call t (m : Classfile.method_info) args =
  m.invocations <- m.invocations + 1;
  maybe_compile t m args;
  let frame = acquire_frame t m ~args in
  t.frames <- frame :: t.frames;
  (* Explicit push/pop instead of [Fun.protect]: the happy path allocates
     no closure; the exception path reraises with its backtrace intact.
     On an exception the frame is deliberately NOT returned to the pool —
     the VM is unwinding and the pool's contents no longer matter. *)
  match exec t frame with
  | result ->
      pop_frames t;
      release_frame t frame;
      result
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      pop_frames t;
      Printexc.raise_with_backtrace e bt

and exec t (frame : Frame.t) =
  let m = frame.method_info in
  let code = m.code in
  let n = Array.length code in
  let base_cost =
    if m.compiled then t.opts.machine.compiled_cost
    else t.opts.machine.interp_cost
  in
  let result = ref None in
  let running = ref true in
  while !running do
    if frame.pc < 0 || frame.pc >= n then
      vm_error "pc %d out of bounds in %s" frame.pc m.method_name;
    t.steps <- t.steps + 1;
    if t.steps > t.opts.max_steps then vm_error "step budget exceeded";
    let pc = frame.pc in
    let instr = code.(pc) in
    frame.pc <- pc + 1;
    retire t 1;
    charge t frame base_cost;
    (* The base slot of a prefetch-type instruction is itself overhead
       the optimization added — it bins as pf/guard overhead, not
       retire, so the profiler's overhead bins carry the full cost of
       the pass's inserted code. The classifying match only runs when a
       profiler is installed. *)
    (match t.prof with
    | Some p ->
        let bin =
          match instr with
          | Prefetch_inter _ | Prefetch_dynamic _ -> Prof_pf_overhead
          | Spec_load _ -> Prof_guard_overhead
          | Prefetch_indirect { guarded; _ } ->
              if guarded then Prof_guard_overhead else Prof_pf_overhead
          | _ -> Prof_retire
        in
        p.on_cycles ~method_id:m.method_id ~pc ~bin ~cycles:base_cost
    | None -> ());
    (match instr with
    | Iconst k -> Frame.push frame (Value.Int k)
    | Aconst_null -> Frame.push frame Value.Null
    | Iload i | Aload i -> Frame.push frame frame.locals.(i)
    | Istore i | Astore i -> frame.locals.(i) <- Frame.pop frame
    | Dup -> Frame.push frame (Frame.peek frame)
    | Pop -> ignore (Frame.pop frame)
    | Iadd ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a + b))
    | Isub ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a - b))
    | Imul ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a * b))
    | Idiv ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        if b = 0 then vm_error "division by zero in %s" m.method_name;
        Frame.push frame (Value.Int (a / b))
    | Irem ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        if b = 0 then vm_error "division by zero in %s" m.method_name;
        Frame.push frame (Value.Int (a mod b))
    | Ineg -> Frame.push frame (Value.Int (-Frame.pop_int frame))
    | Iand ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a land b))
    | Ior ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a lor b))
    | Ixor ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a lxor b))
    | Ishl ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a lsl (b land 63)))
    | Ishr ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        Frame.push frame (Value.Int (a asr (b land 63)))
    | Goto target ->
        if target <= pc then m.backedges <- m.backedges + 1;
        frame.pc <- target
    | If_icmp (c, target) ->
        let b = Frame.pop_int frame and a = Frame.pop_int frame in
        if compare_int c a b then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | If (c, target) ->
        let a = Frame.pop_int frame in
        if compare_int c a 0 then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | If_acmpeq target ->
        let b = Frame.pop frame and a = Frame.pop frame in
        if Value.equal a b then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | If_acmpne target ->
        let b = Frame.pop frame and a = Frame.pop frame in
        if not (Value.equal a b) then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | Ifnull target ->
        if Frame.pop frame = Value.Null then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | Ifnonnull target ->
        if Frame.pop frame <> Value.Null then begin
          if target <= pc then m.backedges <- m.backedges + 1;
          frame.pc <- target
        end
    | Getfield { site; offset; name = _; is_ref = _ } ->
        let id = as_ref frame (Frame.pop frame) in
        let addr = Heap.base_of t.heap id + offset in
        demand_load t frame ~obj:id ~addr ~site;
        observe_load t frame ~site ~addr;
        let slot = (offset - Classfile.header_bytes) / Classfile.slot_bytes in
        Frame.push frame (Heap.get_field t.heap id slot)
    | Putfield { offset; name = _ } ->
        let v = Frame.pop frame in
        let id = as_ref frame (Frame.pop frame) in
        let addr = Heap.base_of t.heap id + offset in
        demand t frame ~obj:id ~addr ~kind:`Store;
        let slot = (offset - Classfile.header_bytes) / Classfile.slot_bytes in
        Heap.set_field t.heap id slot v
    | Getstatic { site; index; name = _; is_ref = _ } ->
        let addr = Classfile.statics_base + (index * Classfile.slot_bytes) in
        demand_load t frame ~obj:(-1) ~addr ~site;
        observe_load t frame ~site ~addr;
        Frame.push frame t.globals.(index)
    | Putstatic { index; name = _ } ->
        let addr = Classfile.statics_base + (index * Classfile.slot_bytes) in
        demand t frame ~obj:(-1) ~addr ~kind:`Store;
        t.globals.(index) <- Frame.pop frame
    | Aaload { len_site; elem_site } | Iaload { len_site; elem_site } ->
        retire t 1;
        charge t frame base_cost;
        prof_cycles t ~method_id:m.method_id ~pc ~bin:Prof_retire
          ~cycles:base_cost;
        let index = Frame.pop_int frame in
        let id = as_ref frame (Frame.pop frame) in
        let addr = array_access t frame ~len_site ~id ~index in
        demand_load t frame ~obj:id ~addr ~site:elem_site;
        observe_load t frame ~site:elem_site ~addr;
        Frame.push frame (Heap.get_elem t.heap id index)
    | Aastore { len_site } | Iastore { len_site } ->
        retire t 1;
        charge t frame base_cost;
        prof_cycles t ~method_id:m.method_id ~pc ~bin:Prof_retire
          ~cycles:base_cost;
        let v = Frame.pop frame in
        let index = Frame.pop_int frame in
        let id = as_ref frame (Frame.pop frame) in
        let addr = array_access t frame ~len_site ~id ~index in
        demand t frame ~obj:id ~addr ~kind:`Store;
        Heap.set_elem t.heap id index v
    | Arraylength { site } ->
        let id = as_ref frame (Frame.pop frame) in
        let addr = Heap.length_addr t.heap id in
        demand_load t frame ~obj:id ~addr ~site;
        observe_load t frame ~site ~addr;
        Frame.push frame (Value.Int (Heap.array_length t.heap id))
    | New class_id ->
        let ci = Classfile.class_of_id t.program class_id in
        let id = allocate t frame (fun () -> Heap.alloc_object t.heap ci) in
        Frame.push frame (Value.Ref id)
    | Newarray kind ->
        let len = Frame.pop_int frame in
        if len < 0 then vm_error "negative array size in %s" m.method_name;
        let alloc () =
          match kind with
          | Bytecode.Int_array -> Heap.alloc_int_array t.heap len
          | Bytecode.Ref_array -> Heap.alloc_ref_array t.heap len
        in
        Frame.push frame (Value.Ref (allocate t frame alloc))
    | Invoke callee_id ->
        let callee = Classfile.method_of_id t.program callee_id in
        let args = Array.make callee.arity Value.Null in
        for i = callee.arity - 1 downto 0 do
          args.(i) <- Frame.pop frame
        done;
        (match call t callee args with
        | Some v -> Frame.push frame v
        | None -> ())
    | Return -> running := false
    | Ireturn | Areturn ->
        result := Some (Frame.pop frame);
        running := false
    | Print ->
        let v = Frame.pop_int frame in
        Buffer.add_string t.out (string_of_int v);
        Buffer.add_char t.out '\n'
    | Prefetch_inter { site; distance } ->
        let extra = max 0 (t.opts.machine.prefetch_cost - base_cost) in
        charge t frame extra;
        if extra > 0 then
          prof_cycles t ~method_id:m.method_id ~pc ~bin:Prof_pf_overhead
            ~cycles:extra;
        let anchor = frame.site_addr.(site) in
        if anchor >= 0 then begin
          let addr = anchor + distance in
          audit_prefetch_addr t addr;
          match t.telem with
          | None -> Memsim.Hierarchy.sw_prefetch t.mem ~addr ~now:(now t)
          | Some tl ->
              let sid =
                Telemetry.Attrib.site_id tl.registry
                  (Telemetry.Attrib.Inter_site
                     { method_id = m.method_id; site })
              in
              Memsim.Hierarchy.sw_prefetch_attr t.mem ~attrib:tl.attrib
                ~addr ~now:(now t) ~site:sid
        end
    | Spec_load { site; distance; reg } ->
        let extra = max 0 (t.opts.machine.guarded_load_cost - base_cost) in
        charge t frame extra;
        if extra > 0 then
          prof_cycles t ~method_id:m.method_id ~pc ~bin:Prof_guard_overhead
            ~cycles:extra;
        let anchor = frame.site_addr.(site) in
        if anchor >= 0 then begin
          let addr = anchor + distance in
          audit_prefetch_addr t addr;
          (match t.telem with
          | None -> Memsim.Hierarchy.guarded_load t.mem ~addr ~now:(now t)
          | Some tl ->
              let sid =
                Telemetry.Attrib.site_id tl.registry
                  (Telemetry.Attrib.Spec_site
                     { method_id = m.method_id; site; reg })
              in
              Memsim.Hierarchy.guarded_load_attr t.mem ~attrib:tl.attrib
                ~addr ~now:(now t) ~site:sid);
          let v =
            match Heap.value_at t.heap addr with
            | Some v -> v
            | None ->
                (* The guard: a speculative load whose address fell outside
                   every live object yields Null instead of faulting
                   (Section 3.3's "loads guarded by software exception
                   checks"). [unguarded_spec_loads] disables the guard to
                   let the fuzzing oracle prove it would catch the
                   resulting fault. *)
                t.spec_guard_trips <- t.spec_guard_trips + 1;
                if t.opts.unguarded_spec_loads then begin
                  t.faulting_prefetches <- t.faulting_prefetches + 1;
                  vm_error
                    "unguarded spec_load faulted at address 0x%x in %s" addr
                    frame.Frame.method_info.method_name
                end;
                Value.Null
          in
          frame.pref_regs.(reg) <- v
        end
        else frame.pref_regs.(reg) <- Value.Null
    | Prefetch_dynamic { site; times } ->
        let extra = max 0 (t.opts.machine.prefetch_cost - base_cost) in
        charge t frame extra;
        if extra > 0 then
          prof_cycles t ~method_id:m.method_id ~pc ~bin:Prof_pf_overhead
            ~cycles:extra;
        let addr = frame.site_addr.(site) and prev = frame.site_prev.(site) in
        if addr >= 0 && prev >= 0 && addr <> prev then begin
          let target = addr + ((addr - prev) * times) in
          audit_prefetch_addr t target;
          match t.telem with
          | None -> Memsim.Hierarchy.sw_prefetch t.mem ~addr:target ~now:(now t)
          | Some tl ->
              let sid =
                Telemetry.Attrib.site_id tl.registry
                  (Telemetry.Attrib.Dynamic_site
                     { method_id = m.method_id; site })
              in
              Memsim.Hierarchy.sw_prefetch_attr t.mem ~attrib:tl.attrib
                ~addr:target ~now:(now t) ~site:sid
        end
    | Prefetch_indirect { reg; offset; guarded } ->
        let cost =
          if guarded then t.opts.machine.guarded_load_cost
          else t.opts.machine.prefetch_cost
        in
        let extra = max 0 (cost - base_cost) in
        charge t frame extra;
        if extra > 0 then
          prof_cycles t ~method_id:m.method_id ~pc
            ~bin:(if guarded then Prof_guard_overhead else Prof_pf_overhead)
            ~cycles:extra;
        (match frame.pref_regs.(reg) with
        | Value.Ref id when Heap.exists t.heap id -> (
            let addr = Heap.base_of t.heap id + offset in
            audit_prefetch_addr t addr;
            match t.telem with
            | None ->
                if guarded then
                  Memsim.Hierarchy.guarded_load t.mem ~addr ~now:(now t)
                else Memsim.Hierarchy.sw_prefetch t.mem ~addr ~now:(now t)
            | Some tl ->
                let sid =
                  Telemetry.Attrib.site_id tl.registry
                    (Telemetry.Attrib.Indirect_site
                       { method_id = m.method_id; reg; offset })
                in
                if guarded then
                  Memsim.Hierarchy.guarded_load_attr t.mem ~attrib:tl.attrib
                    ~addr ~now:(now t) ~site:sid
                else
                  Memsim.Hierarchy.sw_prefetch_attr t.mem ~attrib:tl.attrib
                    ~addr ~now:(now t) ~site:sid)
        | Value.Ref _ | Value.Int _ | Value.Null -> ()));
    ()
  done;
  !result

let run t =
  let entry = Classfile.method_of_id t.program t.program.entry in
  call t entry (Array.make entry.arity Value.Null)
