(** The mixed-mode execution engine.

    Executes mini-JVM bytecode, driving the {!Memsim.Hierarchy} on every
    heap access and charging a simple timing model (DESIGN.md section 5).
    Methods start interpreted; once a method's invocation count reaches the
    hot threshold the [compile_hook] is invoked {e with the actual argument
    values} — exactly the situation the paper's JIT exploits ("the JIT
    compiler is invoked for a method when the method is about to be
    executed... actual values for the parameters are available at compile
    time", Section 3). The hook typically runs {!Jit.Pipeline}, which may
    swap in an optimized body containing prefetch pseudo-instructions; this
    engine executes those too.

    Heap exhaustion triggers a mark-and-sweep + sliding-compaction
    collection ({!Gc_compact}); caches and DTLB are flushed afterwards,
    since compaction rewrites the simulated address space.

    Two execution engines implement these semantics (DESIGN.md
    section 10): the reference {e switch} engine (a fetch/decode loop)
    and the {e closure} engine, which pre-compiles each method body into
    a pc-indexed array of direct-threaded OCaml closures. They are
    bit-identical in every observable — output, heap, cycles, all stats
    counters — which test/test_engine.ml and the fuzz oracle's engine
    axis enforce; the closure engine is simply faster on the host. *)

type engine =
  | Switch  (** the reference fetch/decode loop *)
  | Closure  (** closure-compiled, direct-threaded (default) *)

val engine_name : engine -> string
(** ["switch"] / ["closure"]. *)

val engine_of_string : string -> engine option

type options = {
  machine : Memsim.Config.machine;
  heap_limit_bytes : int;
  hot_threshold : int;  (** invocations before the compile hook fires *)
  alloc_cycles : int;  (** fixed allocation cost *)
  gc_cycles_per_live : int;
  gc_cycles_per_dead : int;
  max_steps : int;  (** step budget; {!Budget_exhausted} when exceeded *)
  unguarded_spec_loads : bool;
      (** fault-injection knob for the differential fuzzing oracle: when
          true, a [Spec_load] whose address falls outside every live
          object raises {!Vm_error} (a simulated segfault) instead of
          being caught by the guard and yielding [Null]. Default [false];
          the paper's spec_load is guarded and never faults
          (Section 3.3). *)
  engine : engine;  (** which engine {!create} wires; default [Closure] *)
  fault_engine_desync : bool;
      (** fault-injection knob for the fuzz oracle's engine axis: when
          true the closure engine retires one extra instruction per
          executed [Goto], desynchronizing it from the switch reference
          in a way only the full-stats cross-engine diff can see.
          Default [false]. *)
  fault_hw_desync : bool;
      (** fault-injection knob for the fuzz oracle's hardware-prefetcher
          axis: when true, a run on a machine shipping the RPT model
          appends a sentinel line to program output at end of run — an
          architectural divergence only the {none,stream,rpt} HW
          cross-check can see. Default [false]. *)
  fault_monitor_desync : bool;
      (** fault-injection knob for the fuzz oracle's monitor axis: when
          true every window-boundary fire charges one extra simulated
          cycle, making the monitor an observer that participates — the
          exact defect the monitor observer-effect cross-check (plain vs
          monitored run at equal cycles) exists to catch. Default
          [false]. *)
}

val default_options : Memsim.Config.machine -> options

type t

exception Vm_error of string

exception Budget_exhausted of int
(** The step budget ([options.max_steps]) was exhausted — the run was cut
    off, not completed. The payload is the budget that was exceeded.
    Distinct from {!Vm_error} (a program/VM fault) so drivers can map it
    to a dedicated exit code; raised by both engines at exactly the same
    step. A printer is registered: ["step budget exceeded (max_steps=N)"]. *)

val create : ?options:options -> Memsim.Config.machine -> Classfile.program -> t

val program : t -> Classfile.program
val heap : t -> Heap.t
val memory : t -> Memsim.Hierarchy.t
val stats : t -> Memsim.Stats.t
val options : t -> options
val output : t -> string
(** Everything the program printed, one value per line. *)

val output_bytes : t -> int
(** Length of the program output so far, without copying it. The live
    monitor samples this at window boundaries to locate planted phase
    markers in the output stream. *)

val global : t -> int -> Value.t
(** Current value of a static slot (read-only view for object inspection). *)

val set_compile_hook : t -> (t -> Classfile.method_info -> Value.t array -> unit) -> unit
(** Install the JIT. The hook runs at most once per method, right before
    the hot invocation executes; it may replace [method_info.code]. *)

val set_load_observer : t -> (method_id:int -> site:int -> addr:int -> unit) -> unit
(** Observe every executed load site with its effective address (used by
    tests to validate object inspection against real execution). *)

val gc_count : t -> int
val gc_cycles : t -> int
val interpreted_cycles : t -> int
val compiled_cycles : t -> int
(** Cycle attribution for Table 3's "% of time in compiled code". *)

val faulting_prefetches : t -> int
(** Prefetch-type operations ([prefetch], [spec_load],
    [prefetch_indirect], dynamic-stride prefetch) that computed a negative
    — hence unmappable — address. Always indicates broken
    distance/offset arithmetic in generated prefetch code; the fuzzing
    oracle asserts this stays zero in every configuration. *)

val set_telemetry : t -> registry:Telemetry.Attrib.t -> ?sink:Telemetry.Sink.t -> unit -> unit
(** Enable effectiveness attribution: all memory traffic is routed
    through the hierarchy's [_attr] entry points, classifying every
    software prefetch against a fresh {!Memsim.Attribution.t} (readable
    via {!attribution}). Prefetch sites are resolved in [registry];
    demand-load misses are bucketed by (method, site). When [sink] is
    given its cycle source is installed and GC spans are recorded.
    Attribution changes no simulated state: cycles and all core stats
    counters stay bit-identical to a plain run. *)

val attribution : t -> Memsim.Attribution.t option
(** The attribution table installed by {!set_telemetry}, if any. *)

(** {2 Profiling hooks}

    The interpreter reports every cycle it charges through exactly one
    hook call, so a collector that sums what it is handed reconstructs
    [Stats.cycles] exactly — the profiler's conservation law (asserted
    by the golden tests and the fuzz oracle). Hooks observe only; a
    profiled run is bit-identical (cycles, stats, output) to an
    unprofiled one. *)

(** Non-stall charge classes. Stall cycles arrive separately through
    [on_stall], already broken down by the level that caused them. *)
type prof_bin =
  | Prof_retire  (** base instruction slot(s) *)
  | Prof_alloc  (** fixed allocation cost *)
  | Prof_pf_overhead
      (** full execution cost (base slot + incremental) of unguarded
          prefetch-type instructions — every cycle the optimization's
          inserted code costs *)
  | Prof_guard_overhead
      (** full execution cost of guarded loads (spec_load / guarded
          prefetch_indirect) *)

type profile_hooks = {
  on_cycles : method_id:int -> pc:int -> bin:prof_bin -> cycles:int -> unit;
      (** [cycles] non-stall cycles charged at [pc] under [bin] *)
  on_stall :
    method_id:int ->
    pc:int ->
    obj:int ->
    tlb:int ->
    l1:int ->
    l2:int ->
    mem:int ->
    unit;
      (** a demand access at [pc] stalled; [tlb+l1+l2+mem] is the full
          stall. [obj] is the referenced heap object id, or [-1]
          (statics / unknown). *)
  on_alloc : obj:int -> method_id:int -> pc:int -> bytes:int -> unit;
      (** a new object [obj] of [bytes] bytes was allocated at [pc] *)
  on_gc : cycles:int -> unit;  (** one collection's total cycle bill *)
}

val set_profile : t -> profile_hooks -> unit
(** Install profiling hooks. Requires telemetry to be enabled first
    ({!set_telemetry}) — the per-access stall breakdown is maintained
    only by the hierarchy's attributed path; raises [Invalid_argument]
    otherwise. *)

val combine_profile_hooks : profile_hooks -> profile_hooks -> profile_hooks
(** Fan out one charge stream to two observers ([a] fires before [b] on
    every call). {!set_profile} is single-consumer by design — the
    disabled state must stay a single [None] test on the hot paths — so
    a run that wants both the object-centric profiler and the live
    monitor installs one combined hook set. *)

val set_monitor :
  t -> window_cycles:int -> on_window:(boundary:int -> unit) -> unit
(** Arm the windowed-monitoring boundary hook: [on_window] fires the
    first time the simulated cycle counter reaches or passes each
    multiple of [window_cycles] (once per crossed boundary — a single
    long stall or GC bill may fire it several times back to back).
    [boundary] is the boundary's nominal cycle count.

    The callback runs between instructions on the charging path and must
    observe only: reading stats, attribution or program counters is
    fine; executing code or touching simulated state is not. Boundaries
    are a pure function of the cycle stream, so they land at identical
    simulated cycles on both execution engines (their bit-identity
    contract covers the charge sequence). Monitoring joins the observer
    fingerprint: the closure engine compiles the instrumented handler
    variant while a monitor is armed, and a monitored run remains
    bit-identical in every simulated observable to an unmonitored one
    (golden- and fuzz-checked). Raises [Invalid_argument] when
    [window_cycles <= 0]. *)

val finalize_telemetry : t -> unit
(** Settle the attribution books at end of run: still-untouched prefetch
    fills are classified useless. Call before reading {!attribution}. *)

val spec_guard_trips : t -> int
(** [spec_load]s whose target address fell outside every live object, so
    the guard substituted [Null]. Expected and benign (speculation runs
    past the end of data structures by design); reported for
    diagnostics. *)

val steps : t -> int
(** Instructions dispatched so far (the quantity [options.max_steps]
    budgets). Engine-invariant. *)

val precompile_method : t -> Classfile.method_info -> unit
(** Under the closure engine: (re)compile the method's closure artifact
    now if it is stale — the JIT pipeline calls this after each pass
    mutation so a freshly optimized body re-enters execution already
    compiled. A no-op under the switch engine. Purely an eagerness hint:
    the artifact is validated on every method entry regardless. *)

val call : t -> Classfile.method_info -> Value.t array -> Value.t option
(** Execute one method to completion (recursively executing its callees)
    and return its result. *)

val run : t -> Value.t option
(** Execute the program entry point with no arguments. *)
