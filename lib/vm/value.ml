(** Runtime values of the mini-JVM.

    References carry a stable object id; the heap maps ids to simulated byte
    addresses, so values survive the sliding compaction of the collector
    unchanged. *)

type t =
  | Int of int
  | Ref of int  (** object id, stable across GC *)
  | Null

(* Shared [Int] blocks for the common small integers (loop counters, array
   indices, character codes). Sharing is unobservable — values are only
   ever compared structurally — and saves both the minor-heap allocation
   per arithmetic result and the write barrier's remembered-set work when
   one is stored into a promoted stack or locals array (the shared blocks
   live in the major heap after startup, and old-to-old pointer stores
   take [caml_modify]'s cheapest path). *)
let small_min = -128
let small_max = 1023
let small = Array.init (small_max - small_min + 1) (fun i -> Int (i + small_min))

let[@inline] of_int n =
  if n >= small_min && n <= small_max then Array.unsafe_get small (n - small_min)
  else Int n

let[@inline] equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Ref x, Ref y -> x = y
  | Null, Null -> true
  | (Int _ | Ref _ | Null), _ -> false

let is_reference = function Ref _ | Null -> true | Int _ -> false

let to_string = function
  | Int n -> string_of_int n
  | Ref id -> Printf.sprintf "ref#%d" id
  | Null -> "null"

let pp ppf v = Format.pp_print_string ppf (to_string v)
