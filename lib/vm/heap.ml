type contents =
  | Object of { class_id : int; fields : Value.t array }
  | Int_array of int array
  | Ref_array of Value.t array

type obj = { id : int; mutable base : int; size : int; contents : contents }

(* Tombstone / "no object" sentinel. Its [id] is -1 (never a real id) and
   its [size] is 0, so neither the id-validity check in [get] nor the
   address-range check in [object_containing] can ever match it. *)
let tombstone = { id = -1; base = -1; size = 0; contents = Int_array [||] }

type t = {
  limit : int;
  mutable next_addr : int;
  (* Dense id -> object table. Ids are handed out sequentially by the bump
     allocator, so [by_id.(id)] is an O(1) bounds-checked array read with
     no hashing and no [option] allocation on the interpreter's hottest
     path. Swept objects leave [tombstone] behind (their slot is never
     reused: ids are monotonically increasing). *)
  mutable by_id : obj array;
  (* Objects in ascending address order. Bump allocation appends in order;
     compaction rebuilds the array, so it is always sorted by [base]. *)
  mutable by_addr : obj array;
  mutable n_objects : int;
  mutable next_id : int;
  (* One-entry memo of the last [object_containing] hit. Speculative loads
     ([Spec_load]) exhibit strong locality: consecutive probes usually land
     in the same object, so checking the memo first skips the binary
     search. Invalidated (reset to [tombstone]) by compaction and [clear],
     the only operations that can move or kill objects. *)
  mutable last_hit : obj;
}

exception Out_of_memory

let default_limit = 64 * 1024 * 1024

let create ?(limit_bytes = default_limit) () =
  {
    limit = limit_bytes;
    next_addr = Classfile.heap_base;
    by_id = Array.make 1024 tombstone;
    by_addr = Array.make 1024 tombstone;
    n_objects = 0;
    next_id = 0;
    last_hit = tombstone;
  }

let limit_bytes t = t.limit
let used_bytes t = t.next_addr - Classfile.heap_base
let live_objects t = t.n_objects

let append_by_addr t obj =
  if t.n_objects = Array.length t.by_addr then begin
    let bigger = Array.make (2 * Array.length t.by_addr) obj in
    Array.blit t.by_addr 0 bigger 0 t.n_objects;
    t.by_addr <- bigger
  end;
  t.by_addr.(t.n_objects) <- obj;
  t.n_objects <- t.n_objects + 1

let append_by_id t obj =
  (* [obj.id = t.next_id - 1] by construction. Grow by doubling. *)
  if obj.id >= Array.length t.by_id then begin
    let bigger = Array.make (2 * Array.length t.by_id) tombstone in
    Array.blit t.by_id 0 bigger 0 (Array.length t.by_id);
    t.by_id <- bigger
  end;
  t.by_id.(obj.id) <- obj

let align n = (n + Classfile.slot_bytes - 1) land lnot (Classfile.slot_bytes - 1)

let alloc t ~size contents =
  let size = align size in
  if t.next_addr + size > Classfile.heap_base + t.limit then raise Out_of_memory;
  let obj = { id = t.next_id; base = t.next_addr; size; contents } in
  t.next_id <- t.next_id + 1;
  t.next_addr <- t.next_addr + size;
  append_by_id t obj;
  append_by_addr t obj;
  obj.id

let alloc_object t (ci : Classfile.class_info) =
  alloc t ~size:ci.instance_bytes
    (Object
       {
         class_id = ci.class_id;
         fields = Array.make (Array.length ci.fields) Value.Null;
       })

let array_size len = Classfile.array_elems_offset + (len * Classfile.slot_bytes)

let alloc_int_array t len =
  if len < 0 then invalid_arg "alloc_int_array: negative length";
  alloc t ~size:(array_size len) (Int_array (Array.make len 0))

let alloc_ref_array t len =
  if len < 0 then invalid_arg "alloc_ref_array: negative length";
  alloc t ~size:(array_size len) (Ref_array (Array.make len Value.Null))

let[@inline never] dangling id =
  invalid_arg (Printf.sprintf "heap: dangling object id %d" id)

let[@inline] get t id =
  if id >= 0 && id < t.next_id then begin
    let obj = Array.unsafe_get t.by_id id in
    (* A swept slot holds [tombstone], whose id (-1) never equals a real
       id; live slots hold the object whose id equals the index. *)
    if obj.id = id then obj else dangling id
  end
  else dangling id

let exists t id = id >= 0 && id < t.next_id && (Array.unsafe_get t.by_id id).id = id
let[@inline] base_of t id = (get t id).base
let[@inline] size_of t id = (get t id).size

let class_id_of t id =
  match (get t id).contents with
  | Object { class_id; _ } -> Some class_id
  | Int_array _ | Ref_array _ -> None

let is_ref_array t id =
  match (get t id).contents with Ref_array _ -> true | _ -> false

let fields_of obj =
  match obj.contents with
  | Object { fields; _ } -> fields
  | Int_array _ | Ref_array _ -> invalid_arg "heap: array used as object"

let get_field t id slot = (fields_of (get t id)).(slot)
let set_field t id slot v = (fields_of (get t id)).(slot) <- v

let field_addr t id slot =
  (get t id).base + Classfile.header_bytes + (slot * Classfile.slot_bytes)

let array_length t id =
  match (get t id).contents with
  | Int_array a -> Array.length a
  | Ref_array a -> Array.length a
  | Object _ -> invalid_arg "heap: object used as array"

let length_addr t id = (get t id).base + Classfile.array_length_offset

let get_elem t id i =
  match (get t id).contents with
  | Int_array a -> Value.Int a.(i)
  | Ref_array a -> a.(i)
  | Object _ -> invalid_arg "heap: object used as array"

let set_elem t id i v =
  match ((get t id).contents, v) with
  | Int_array a, Value.Int n -> a.(i) <- n
  | Int_array _, (Value.Ref _ | Value.Null) ->
      invalid_arg "heap: reference stored into int array"
  | Ref_array a, (Value.Ref _ | Value.Null) -> a.(i) <- v
  | Ref_array _, Value.Int _ -> invalid_arg "heap: int stored into ref array"
  | Object _, _ -> invalid_arg "heap: object used as array"

let elem_addr t id i =
  (get t id).base + Classfile.array_elems_offset + (i * Classfile.slot_bytes)

(* One-fetch [(base, length)] view of an array object, for the closure
   engine's array-access sequence: bounds-check-load address, bounds test
   and element address all derive from a single table lookup instead of
   three [get] round-trips. *)
let[@inline] array_view t id =
  let obj = get t id in
  match obj.contents with
  | Int_array a -> (obj.base, Array.length a)
  | Ref_array a -> (obj.base, Array.length a)
  | Object _ -> invalid_arg "heap: object used as array"

(* Greatest object whose base is <= addr, by binary search over the
   address-ordered table; the last hit is memoized, which turns the
   spec-load probe sequences of Section 3.3 (many addresses within one
   inspected object) into a single range check. *)
let object_containing t addr =
  let memo = t.last_hit in
  if addr >= memo.base && addr - memo.base < memo.size then Some memo
  else begin
    let lo = ref 0 and hi = ref (t.n_objects - 1) and found = ref tombstone in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let obj = t.by_addr.(mid) in
      if obj.base <= addr then begin
        found := obj;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    let obj = !found in
    if obj.id >= 0 && addr - obj.base < obj.size then begin
      t.last_hit <- obj;
      Some obj
    end
    else None
  end

let object_at t addr =
  match object_containing t addr with Some o -> Some o.id | None -> None

let value_at t addr =
  match object_containing t addr with
  | None -> None
  | Some obj -> (
      let rel = addr - obj.base in
      let slot_of off = (rel - off) / Classfile.slot_bytes in
      let aligned off = (rel - off) mod Classfile.slot_bytes = 0 in
      match obj.contents with
      | Object { fields; _ } ->
          let off = Classfile.header_bytes in
          if rel >= off && aligned off && slot_of off < Array.length fields
          then Some fields.(slot_of off)
          else None
      | Int_array a ->
          if rel = Classfile.array_length_offset then
            Some (Value.Int (Array.length a))
          else
            let off = Classfile.array_elems_offset in
            if rel >= off && aligned off && slot_of off < Array.length a then
              Some (Value.Int a.(slot_of off))
            else None
      | Ref_array a ->
          if rel = Classfile.array_length_offset then
            Some (Value.Int (Array.length a))
          else
            let off = Classfile.array_elems_offset in
            if rel >= off && aligned off && slot_of off < Array.length a then
              Some a.(slot_of off)
            else None)

let referenced_ids t id =
  let refs_of_values values =
    Array.fold_left
      (fun acc v -> match v with Value.Ref r -> r :: acc | _ -> acc)
      [] values
  in
  match (get t id).contents with
  | Object { fields; _ } -> refs_of_values fields
  | Ref_array a -> refs_of_values a
  | Int_array _ -> []

let iter_ids_in_address_order t f =
  for i = 0 to t.n_objects - 1 do
    f t.by_addr.(i).id
  done

let compact t ~live =
  let kept = ref 0 and removed = ref 0 in
  let cursor = ref Classfile.heap_base in
  for i = 0 to t.n_objects - 1 do
    let obj = t.by_addr.(i) in
    if live obj.id then begin
      obj.base <- !cursor;
      cursor := !cursor + obj.size;
      t.by_addr.(!kept) <- obj;
      incr kept
    end
    else begin
      t.by_id.(obj.id) <- tombstone;
      incr removed
    end
  done;
  t.n_objects <- !kept;
  t.next_addr <- !cursor;
  (* Bases moved and objects died: the memo can no longer be trusted. *)
  t.last_hit <- tombstone;
  !removed

let clear t =
  Array.fill t.by_id 0 (Array.length t.by_id) tombstone;
  t.n_objects <- 0;
  t.next_addr <- Classfile.heap_base;
  t.next_id <- 0;
  t.last_hit <- tombstone
