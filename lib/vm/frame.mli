(** An activation record: locals, operand stack, and the per-site address
    registers that anchor prefetch code.

    [site_addr.(s)] holds the last effective address computed by load site
    [s] in this activation (-1 before its first execution); the spliced
    [Prefetch_inter]/[Spec_load] instructions read it as [A(L)], "the
    memory address of data loaded by L in the current iteration"
    (Section 3.3). [site_prev] holds the address before that, for
    dynamic-stride (phased) prefetching. [pref_regs] are the destinations
    of [Spec_load]. *)

type t = {
  method_info : Classfile.method_info;
  locals : Value.t array;
  stack : Value.t array;
  mutable sp : int;
  site_addr : int array;
  site_prev : int array;
  pref_regs : Value.t array;
  mutable pc : int;
}

exception Stack_error of string

val max_stack : int

val create : Classfile.method_info -> args:Value.t array -> t
(** Raises [Invalid_argument] when the argument count does not match the
    method's arity. *)

val reusable : t -> Classfile.method_info -> bool
(** Whether a pooled frame still matches the method's current shape — the
    JIT may swap a method's body and grow its locals/site counts, after
    which old frames must not be recycled. *)

val reset : t -> args:Value.t array -> unit
(** Reinitialize a (reusable) frame to the state {!create} would produce:
    locals zeroed then seeded with [args], empty stack, all site address
    registers -1, prefetch registers null, pc 0. Raises [Invalid_argument]
    on an argument-count mismatch, like {!create}. *)

val push : t -> Value.t -> unit
val pop : t -> Value.t
val pop_int : t -> int
val peek : t -> Value.t

val roots : t -> Value.t list
(** Every value the collector must treat as live: locals, the live part
    of the operand stack, and the speculative prefetch registers. *)
