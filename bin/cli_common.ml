(* Option parsing shared by the spf_* command-line drivers.

   Every binary used to carry its own copy of the machine / mode / engine /
   hw-prefetch / prediction converters, and the copies drifted (spf_prof
   had no --prediction, spf_mon no --hw-prefetch). The single definitions
   here are the only ones: a new axis added to one tool is automatically
   spelled the same everywhere, which the diff engine's --vs override
   parser (Diff.Bisect) relies on. *)

let workloads =
  Workloads.Specjvm.all @ Workloads.Javagrande.all @ Workloads.Phase.all

let find_workload name =
  List.find_opt
    (fun (w : Workloads.Workload.t) ->
      String.lowercase_ascii w.name = String.lowercase_ascii name)
    workloads

let machine_conv =
  let parse s =
    match Memsim.Config.machine_of_name s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown machine '%s' (expected: %s)" s
               (String.concat ", "
                  (List.map
                     (fun (m : Memsim.Config.machine) -> m.name)
                     Memsim.Config.machines))))
  in
  let print ppf (m : Memsim.Config.machine) = Format.fprintf ppf "%s" m.name in
  Cmdliner.Arg.conv (parse, print)

let mode_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "off" | "baseline" -> Ok Strideprefetch.Options.Off
    | "inter" -> Ok Strideprefetch.Options.Inter
    | "inter+intra" | "inter_intra" | "interintra" ->
        Ok Strideprefetch.Options.Inter_intra
    | _ -> Error (`Msg "expected one of: off, inter, inter+intra")
  in
  let print ppf m =
    Format.fprintf ppf "%s" (Strideprefetch.Options.mode_name m)
  in
  Cmdliner.Arg.conv (parse, print)

let engine_conv =
  let parse s =
    match Vm.Interp.engine_of_string (String.lowercase_ascii s) with
    | Some e -> Ok e
    | None -> Error (`Msg "expected one of: closure, switch")
  in
  let print ppf e = Format.fprintf ppf "%s" (Vm.Interp.engine_name e) in
  Cmdliner.Arg.conv (parse, print)

let hw_prefetch_conv =
  let parse s =
    match Memsim.Config.hw_prefetch_of_string s with
    | Ok hw -> Ok hw
    | Error e -> Error (`Msg e)
  in
  let print ppf hw =
    Format.fprintf ppf "%s" (Memsim.Config.hw_prefetch_to_string hw)
  in
  Cmdliner.Arg.conv (parse, print)

let prediction_conv =
  let parse s =
    match Strideprefetch.Options.prediction_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print ppf p =
    Format.fprintf ppf "%s" (Strideprefetch.Options.prediction_name p)
  in
  Cmdliner.Arg.conv (parse, print)

let machine_arg =
  Cmdliner.Arg.(
    value
    & opt machine_conv Memsim.Config.pentium4
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:"Simulated machine (pentium4 or athlonmp).")

let mode_arg =
  Cmdliner.Arg.(
    value
    & opt mode_conv Strideprefetch.Options.Inter_intra
    & info [ "p"; "mode" ] ~docv:"MODE"
        ~doc:"Prefetching mode: off, inter, or inter+intra.")

let engine_arg =
  Cmdliner.Arg.(
    value
    & opt engine_conv Vm.Interp.Closure
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,closure) (method bodies pre-compiled to \
           direct-threaded closure arrays; the default) or $(b,switch) \
           (the reference fetch/decode loop). Simulated results are \
           bit-identical either way; closure is faster on the host.")

let hw_prefetch_arg =
  Cmdliner.Arg.(
    value
    & opt (some hw_prefetch_conv) None
    & info [ "hw-prefetch" ] ~docv:"SPEC"
        ~doc:
          "Override the machine's hardware prefetcher: $(b,none), \
           $(b,stream[:STREAMS]) (the default sequential stream unit), or \
           $(b,rpt[:TABLExDEGREE@DISTANCE]) (a Chen/Baer reference \
           prediction table doing per-PC stride prediction, e.g. \
           $(b,rpt:64x2@4)). The simulated program behaves identically \
           under every model; only cycles and memory counters move.")

let prediction_arg =
  Cmdliner.Arg.(
    value
    & opt prediction_conv Strideprefetch.Options.Inspect
    & info [ "prediction" ] ~docv:"TIER"
        ~doc:
          "Stride-prediction source: $(b,inspect) (the paper's dynamic \
           object inspection; the default), $(b,static) (the \
           address-algebra abstract interpretation alone), or \
           $(b,hybrid) (static $(b,certain) verdicts skip the inspection \
           iterations, $(b,likely) shortens them, $(b,unknown) falls \
           back to full inspection). Program results are identical under \
           every tier; only compile-time work and the generated plans \
           may differ.")

let apply_hw_prefetch hw (machine : Memsim.Config.machine) =
  match hw with
  | None -> machine
  | Some hw -> { machine with Memsim.Config.hw_prefetch = hw }
