(* The live-monitoring driver: run one workload with the windowed
   monitor armed, print the terminal dashboard (sparklines, verdict
   timeline, top degrading loops and sites), export the per-window time
   series as JSONL and the run's event stream — monitor counter track
   included — as a Chrome trace.

   For the phase-shifting workloads (which print a marker at their
   planted shift) the detection latency is measured and, under
   [--max-latency], gated: exit code 2 when the monitor missed the shift
   or took too long. *)

let find_workload = Cli_common.find_workload

let workload_arg =
  Cmdliner.Arg.(
    required
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:
          "Workload name (see $(b,spf_run list)); the $(b,PhaseShift) and \
           $(b,PhaseChurn) workloads carry a planted mid-run shift.")

let machine_arg = Cli_common.machine_arg
let mode_arg = Cli_common.mode_arg
let engine_arg = Cli_common.engine_arg

let window_arg =
  Cmdliner.Arg.(
    value
    & opt int Monitor.Collector.default_window_cycles
    & info [ "window" ] ~docv:"CYCLES"
        ~doc:"Window size in simulated cycles (default 262144).")

let jsonl_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE"
        ~doc:
          "Write the per-window time series as JSONL (one object per \
           window plus a trailing summary line).")

let trace_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the run's event stream as Chrome trace_event JSON; the \
           monitor's per-window samples appear as a counter track \
           ($(b,monitor.window)).")

let top_arg =
  Cmdliner.Arg.(
    value & opt int 5
    & info [ "top" ] ~docv:"N"
        ~doc:"Rows in the top-degrading loops/sites tables (default 5).")

let max_latency_arg =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "max-latency" ] ~docv:"WINDOWS"
        ~doc:
          "Gate the detection latency of a phase workload's planted \
           shift: exit with code 2 when no Degraded verdict lands within \
           $(docv) windows of the shift. Ignored for workloads without a \
           marker.")

let latency_gate_exit = 2

let run name machine hw mode engine prediction window jsonl trace top
    max_latency =
  match find_workload name with
  | None ->
      prerr_endline ("unknown workload: " ^ name);
      exit 1
  | Some w ->
      if window <= 0 then begin
        prerr_endline "spf_mon: --window must be positive";
        exit 1
      end;
      let machine = Cli_common.apply_hw_prefetch hw machine in
      let opts = { Strideprefetch.Options.default with prediction } in
      let result =
        Workloads.Harness.run ~opts ~engine ~monitor:window ~mode ~machine w
      in
      let rep = Option.get result.Workloads.Harness.monitor in
      Printf.printf "workload: %s  machine: %s  mode: %s  engine: %s\n"
        result.workload result.machine
        (Strideprefetch.Options.mode_name result.mode)
        (Vm.Interp.engine_name engine);
      Format.printf "%a" (Monitor.Report.pp_dashboard ~top) rep;
      (match jsonl with
      | Some path ->
          Out_channel.with_open_text path (Monitor.Report.write_jsonl rep);
          Printf.printf "per-window JSONL written to %s (%d windows)\n" path
            (Array.length rep.Monitor.Report.windows)
      | None -> ());
      (match (trace, result.sink) with
      | Some path, Some sink ->
          let other =
            [
              ("workload", Telemetry.Json.Str result.workload);
              ("machine", Telemetry.Json.Str result.machine);
              ( "mode",
                Telemetry.Json.Str (Strideprefetch.Options.mode_name result.mode)
              );
            ]
          in
          Telemetry.Trace.write_chrome ~other sink ~path;
          Printf.printf "chrome trace written to %s\n" path
      | Some _, None | None, _ -> ());
      (* Detection latency against the planted shift, when there is one. *)
      (match Workloads.Phase.marker_offset result.output with
      | None -> ()
      | Some off -> (
          match Monitor.Report.detection_latency rep ~marker_offset:off with
          | Monitor.Report.No_shift ->
              print_endline "phase shift: marker past the last window"
          | Monitor.Report.Undetected shift ->
              Printf.printf "phase shift at window %d: NOT detected\n" shift;
              if max_latency <> None then exit latency_gate_exit
          | Monitor.Report.Detected { shift; degraded; latency } -> (
              Printf.printf
                "phase shift at window %d: degraded at window %d (latency %d \
                 windows)\n"
                shift degraded latency;
              match max_latency with
              | Some gate when latency > gate ->
                  Printf.printf "latency gate FAILED (> %d windows)\n" gate;
                  exit latency_gate_exit
              | _ -> ())))

let () =
  let info =
    Cmdliner.Cmd.info "spf_mon" ~version:"1.0"
      ~doc:
        "Live windowed monitoring for the stride-prefetching simulator: \
         phase-aware time-series metrics, degradation detectors, and a \
         monitoring dashboard."
  in
  exit
    (Cmdliner.Cmd.eval
       (Cmdliner.Cmd.v info
          Cmdliner.Term.(
            const run $ workload_arg $ machine_arg $ Cli_common.hw_prefetch_arg
            $ mode_arg $ engine_arg $ Cli_common.prediction_arg $ window_arg
            $ jsonl_arg $ trace_arg $ top_arg $ max_latency_arg)))
