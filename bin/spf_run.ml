(* Command-line driver: run workloads or MiniJava source files through the
   mini-JVM with stride prefetching, and compare configurations. *)

(* Option axes (workload lookup, machine/mode/engine/hw/prediction
   converters and args) are shared across all spf_* drivers. *)
let workloads = Cli_common.workloads
let find_workload = Cli_common.find_workload
let machine_arg = Cli_common.machine_arg
let hw_prefetch_arg = Cli_common.hw_prefetch_arg
let apply_hw_prefetch = Cli_common.apply_hw_prefetch
let engine_arg = Cli_common.engine_arg

let max_steps_arg =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N"
        ~doc:
          "Step budget: abort with exit code 3 once the VM has dispatched \
           more than $(docv) instructions (default: 2e9).")

(* Exit code 3 marks a run cut off by the step budget — distinct from
   cmdliner usage errors (124/125) and uncaught VM faults, so scripts and
   CI rules can gate on it. *)
let budget_exit_code = 3

let with_budget_exit f =
  try f ()
  with Vm.Interp.Budget_exhausted n ->
    Printf.eprintf "spf_run: step budget exceeded (max_steps=%d)\n" n;
    exit budget_exit_code

let tweak_max_steps max_steps o =
  match max_steps with
  | Some n -> { o with Vm.Interp.max_steps = n }
  | None -> o

let mode_arg = Cli_common.mode_arg

let verbose_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Print per-loop prefetching reports.")

let interproc_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "interprocedural" ]
        ~doc:
          "Inter-procedural object inspection: step into callees instead \
           of skipping them (extension; see Section 3.2 of the paper).")

let phased_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "phased" ]
        ~doc:
          "Detect Wu-style phased multiple-stride loads and prefetch them \
           with a run-time-computed stride (extension).")

let trace_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Run with telemetry enabled and write the event stream as Chrome \
           trace_event JSON (load in chrome://tracing or ui.perfetto.dev). \
           Also prints the per-site effectiveness table.")

let explain_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print per-loop decision provenance: candidate sites, observed \
           delta histograms, detected patterns and rejection reasons \
           (same reports as $(b,--verbose)).")

let profile_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Run with the object-centric profiler installed and print the \
           top-down cycle accounting (see $(b,spf_prof) for the full \
           table/flamegraph/JSON tooling).")

let monitor_arg =
  Cmdliner.Arg.(
    value
    & opt ~vopt:(Some Monitor.Collector.default_window_cycles) (some int) None
    & info [ "monitor" ] ~docv:"WINDOW"
        ~doc:
          "Run with the live windowed monitor armed (implies telemetry) \
           and print the monitoring dashboard: per-window prefetch \
           usefulness, stall-bin mix and degradation verdicts. $(docv) is \
           the window size in simulated cycles (default 262144). See \
           $(b,spf_mon) for the full time-series tooling.")

let prediction_arg = Cli_common.prediction_arg

let opts_of ~interproc ~phased ~prediction =
  {
    Strideprefetch.Options.default with
    Strideprefetch.Options.inspect_calls = interproc;
    enable_phased = phased;
    prediction;
  }

let print_result ~verbose (r : Workloads.Harness.run_result) =
  Printf.printf "workload: %s  machine: %s  mode: %s\n" r.workload r.machine
    (Strideprefetch.Options.mode_name r.mode);
  Printf.printf "cycles: %d  (compiled %.1f%%)  GCs: %d\n" r.cycles
    (100.0 *. Workloads.Harness.compiled_fraction r)
    r.gc_count;
  Format.printf "%a@." Memsim.Stats.pp r.stats;
  Format.printf "MPI: %a@." Memsim.Stats.pp_mpi r.stats;
  Printf.printf "methods compiled: %d  compile time: %.3f ms (prefetch pass \
                 %.3f ms)\n"
    r.methods_compiled
    (1000.0 *. r.total_compile_seconds)
    (1000.0 *. r.prefetch_pass_seconds);
  Printf.printf "program output:\n%s" r.output;
  if verbose then
    List.iter
      (fun rep -> Format.printf "%a@." Strideprefetch.Pass.pp_report rep)
      r.reports;
  (match r.profile with
  | Some rep -> Format.printf "@.%a@." (Profile.Report.pp_topdown ~top:10) rep
  | None -> ());
  match r.monitor with
  | Some rep -> Format.printf "@.%a" (Monitor.Report.pp_dashboard ~top:5) rep
  | None -> ()

(* Telemetry epilogue shared by [run] and [file]: effectiveness table plus
   the Chrome-trace export, when the run carried a sink. *)
let export_trace ~trace (r : Workloads.Harness.run_result) =
  match trace with
  | None -> ()
  | Some path ->
      (match r.effectiveness with
      | Some eff when eff.Workloads.Effectiveness.rows <> [] ->
          Format.printf "@.%a@." Workloads.Effectiveness.pp_table eff
      | Some _ | None -> ());
      (match r.sink with
      | Some sink ->
          let other =
            [
              ("workload", Telemetry.Json.Str r.workload);
              ("machine", Telemetry.Json.Str r.machine);
              ( "mode",
                Telemetry.Json.Str (Strideprefetch.Options.mode_name r.mode) );
            ]
          in
          Telemetry.Trace.write_chrome ~other sink ~path;
          Printf.printf "chrome trace written to %s\n" path
      | None -> ())

let list_cmd =
  let run () =
    List.iter
      (fun (w : Workloads.Workload.t) ->
        Printf.printf "%-12s %-10s %s\n" w.name
          (match w.suite with
          | `Specjvm -> "SPECjvm98"
          | `Javagrande -> "JavaGrande"
          | `Phase -> "Phase")
          w.description)
      workloads
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "list" ~doc:"List the available workloads.")
    Cmdliner.Term.(const run $ const ())

let run_cmd =
  let workload_arg =
    Cmdliner.Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,list)).")
  in
  let run name machine hw mode verbose interproc phased prediction trace
      explain profile monitor engine max_steps =
    match find_workload name with
    | None ->
        prerr_endline ("unknown workload: " ^ name);
        exit 1
    | Some w ->
        let machine = apply_hw_prefetch hw machine in
        let opts = opts_of ~interproc ~phased ~prediction in
        let result =
          with_budget_exit (fun () ->
              Workloads.Harness.run ~opts
                ~telemetry:(trace <> None)
                ~profile ?monitor ~engine
                ~tweak_options:(tweak_max_steps max_steps)
                ~mode ~machine w)
        in
        print_result ~verbose:(verbose || explain) result;
        export_trace ~trace result
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "run" ~doc:"Run one workload under one configuration.")
    Cmdliner.Term.(
      const run $ workload_arg $ machine_arg $ hw_prefetch_arg $ mode_arg
      $ verbose_arg $ interproc_arg $ phased_arg $ prediction_arg
      $ trace_arg $ explain_arg $ profile_arg $ monitor_arg $ engine_arg
      $ max_steps_arg)

let compare_cmd =
  let workload_arg =
    Cmdliner.Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,list)).")
  in
  let run name machine hw engine max_steps =
    match find_workload name with
    | None ->
        prerr_endline ("unknown workload: " ^ name);
        exit 1
    | Some w ->
        let machine = apply_hw_prefetch hw machine in
        let one mode =
          with_budget_exit (fun () ->
              Workloads.Harness.run ~engine
                ~tweak_options:(tweak_max_steps max_steps)
                ~mode ~machine w)
        in
        let baseline = one Strideprefetch.Options.Off in
        let inter = one Strideprefetch.Options.Inter in
        let both = one Strideprefetch.Options.Inter_intra in
        Printf.printf "%s on %s:\n" w.name machine.Memsim.Config.name;
        Printf.printf "  BASELINE     %12d cycles\n" baseline.cycles;
        Printf.printf "  INTER        %12d cycles  %+.1f%%\n" inter.cycles
          (Workloads.Harness.percent_speedup ~baseline inter);
        Printf.printf "  INTER+INTRA  %12d cycles  %+.1f%%\n" both.cycles
          (Workloads.Harness.percent_speedup ~baseline both)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "compare"
       ~doc:"Run BASELINE / INTER / INTER+INTRA and print speedups.")
    Cmdliner.Term.(
      const run $ workload_arg $ machine_arg $ hw_prefetch_arg $ engine_arg
      $ max_steps_arg)

let file_cmd =
  let path_arg =
    Cmdliner.Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.mj" ~doc:"MiniJava source file.")
  in
  let run path machine hw mode verbose interproc phased prediction trace
      explain profile monitor engine max_steps =
    let machine = apply_hw_prefetch hw machine in
    let source = In_channel.with_open_text path In_channel.input_all in
    match Minijava.Compile.program_of_source source with
    | Error e ->
        Printf.eprintf "%s: %s\n" path (Minijava.Compile.string_of_error e);
        exit 1
    | Ok _ ->
        let w =
          {
            Workloads.Workload.name = Filename.basename path;
            suite = `Specjvm;
            description = "user program";
            paper_note = "";
            source;
            heap_limit_bytes = 64 * 1024 * 1024;
          }
        in
        let opts = opts_of ~interproc ~phased ~prediction in
        let result =
          with_budget_exit (fun () ->
              Workloads.Harness.run ~opts
                ~telemetry:(trace <> None)
                ~profile ?monitor ~engine
                ~tweak_options:(tweak_max_steps max_steps)
                ~mode ~machine w)
        in
        print_result ~verbose:(verbose || explain) result;
        export_trace ~trace result
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "file" ~doc:"Compile and run a MiniJava source file.")
    Cmdliner.Term.(
      const run $ path_arg $ machine_arg $ hw_prefetch_arg $ mode_arg
      $ verbose_arg $ interproc_arg $ phased_arg $ prediction_arg
      $ trace_arg $ explain_arg $ profile_arg $ monitor_arg $ engine_arg
      $ max_steps_arg)

let () =
  let info =
    Cmdliner.Cmd.info "spf_run" ~version:"1.0"
      ~doc:
        "Stride prefetching by dynamically inspecting objects: simulation \
         driver."
  in
  exit
    (Cmdliner.Cmd.eval
       (Cmdliner.Cmd.group info [ list_cmd; run_cmd; compare_cmd; file_cmd ]))
