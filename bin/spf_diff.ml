(* Differential run diagnosis driver.

   Three ways in:
   - live twin diff:   spf_diff -w db --vs prediction=hybrid
       runs the base (A) and overridden (B) configurations with the
       profiler installed and prints the blame report — per-loop /
       per-allocation-site cycle deltas by stall bin, attribution deltas
       and pass-decision changes, with the conservation check (per-loop
       deltas + gc = total cycle delta, exactly);
   - axis bisection:   spf_diff -w db --vs mode=off,engine=switch --bisect
       replays intermediate configurations (plain, unprofiled runs —
       cycles are observer-independent) to isolate the minimal axis set
       responsible for the delta;
   - recorded diff:    spf_diff -a old.json -b new.json
       diffs two snapshots written by --record (spf_diff/v1) or by
       spf_prof --json (spf_prof/v1; carries no config/attribution/
       provenance, those sections are skipped).

   Exit codes: 0 clean; 1 conservation violation, --expect-axis
   mismatch, or --max-replays exceeded; 2 invariant violation in a
   replay; cmdliner codes for usage errors. *)

module H = Workloads.Harness
module O = Strideprefetch.Options
module B = Diff.Bisect

let opts_of (c : B.config) =
  {
    O.default with
    O.prediction = c.prediction;
    inter_stride_threshold = c.threshold;
    check_invariants = true;
  }

let run_live ?(profile = false) ~workload (c : B.config) =
  try
    H.run ~opts:(opts_of c) ~standard_passes:c.passes ~engine:c.engine
      ~profile ~mode:c.mode ~machine:(B.machine_of c) workload
  with H.Invariant_violation msg ->
    Printf.eprintf "spf_diff: invariant violation in replay: %s\n" msg;
    exit 2

let rundata_of_live ~workload c =
  let r = run_live ~profile:true ~workload c in
  match
    Diff.Rundata.of_run
      ~config:(B.config_strings ~workload:r.H.workload c)
      r
  with
  | Ok rd -> rd
  | Error e ->
      Printf.eprintf "spf_diff: %s\n" e;
      exit 2

let conservation_gate blame =
  match Diff.Blame.check blame with
  | None -> ()
  | Some msg ->
      Printf.eprintf "spf_diff: %s\n" msg;
      exit 1

let write_json path json =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Telemetry.Json.to_string json);
      Out_channel.output_string oc "\n")

let find_workload_or_die name =
  match Cli_common.find_workload name with
  | Some w -> w
  | None ->
      Printf.eprintf "spf_diff: unknown workload %s\n" name;
      exit 2

(* ------------------------------------------------------------------ *)

let workload_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:"Workload to replay (required for live diffs and --record).")

let vs_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "vs" ] ~docv:"KEY=VALUE[,...]"
        ~doc:
          "B-side config: the base options with these axes overridden. \
           Keys: $(b,machine), $(b,mode), $(b,engine), $(b,hw), \
           $(b,prediction), $(b,threshold) (int or $(b,default)), \
           $(b,passes) (on/off).")

let threshold_arg =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "threshold" ] ~docv:"BYTES"
        ~doc:
          "Inter-stride profitability threshold override for the base \
           config (default: the paper's half-line rule).")

let no_passes_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "no-passes" ]
        ~doc:"Disable the standard JIT passes in the base config.")

let bisect_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "bisect" ]
        ~doc:
          "Bisect the option axes instead of profiling: replay \
           intermediate configurations (one axis flipped at a time, \
           early-stopping on an exact reproduction of B's cycles) and \
           name the minimal responsible axis set.")

let expect_axis_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "expect-axis" ] ~docv:"AXIS"
        ~doc:
          "With --bisect: exit 1 unless the top responsible axis is \
           $(docv) — the CI hook that keeps the bisector honest.")

let max_replays_arg =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "max-replays" ] ~docv:"N"
        ~doc:"With --bisect: exit 1 if more than $(docv) replays were spent.")

let record_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"FILE"
        ~doc:
          "Run the base configuration once (profiled) and write its \
           spf_diff/v1 snapshot to $(docv) for later offline diffing.")

let a_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "a" ] ~docv:"FILE"
        ~doc:"Baseline snapshot (spf_diff/v1 or spf_prof/v1 JSON).")

let b_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "b" ] ~docv:"FILE" ~doc:"New snapshot to diff against -a.")

let json_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the blame report as JSON to $(docv).")

let top_arg =
  Cmdliner.Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"N" ~doc:"Rows per blame table (default 10).")

let inject_arg =
  Cmdliner.Arg.(
    value
    & opt (some (enum [ ("diff-desync", `Diff_desync) ])) None
    & info [ "inject" ] ~docv:"FAULT"
        ~doc:
          "Self-test fault injection: $(b,diff-desync) perturbs one \
           loop's delta after the blame join, so the conservation check \
           must fail and spf_diff must exit 1. Never use outside the \
           @diff self-test.")

let emit_blame ~json ~top ~fault blame =
  let blame' = blame in
  print_string (Diff.Blame.render ~top blame');
  (match json with
  | Some path ->
      write_json path (Diff.Blame.to_json blame');
      Printf.printf "blame JSON written to %s\n" path
  | None -> ());
  ignore fault;
  conservation_gate blame'

let main workload machine hw mode engine prediction threshold no_passes vs
    bisect expect_axis max_replays record a_file b_file json top inject =
  let base =
    {
      B.machine;
      mode;
      engine;
      passes = not no_passes;
      hw;
      prediction;
      threshold;
    }
  in
  let fault = inject = Some `Diff_desync in
  match (record, a_file, b_file) with
  | Some path, _, _ ->
      let name =
        match workload with
        | Some n -> n
        | None ->
            Printf.eprintf "spf_diff: --record needs --workload\n";
            exit 2
      in
      let w = find_workload_or_die name in
      let rd = rundata_of_live ~workload:w base in
      write_json path (Diff.Rundata.to_json rd);
      Printf.printf "snapshot written to %s (%s, %d cycles)\n" path
        rd.Diff.Rundata.config.c_workload rd.Diff.Rundata.cycles
  | None, Some fa, Some fb ->
      let load f =
        match Diff.Rundata.load f with
        | Ok rd -> rd
        | Error e ->
            Printf.eprintf "spf_diff: %s\n" e;
            exit 2
      in
      let ra = load fa and rb = load fb in
      emit_blame ~json ~top ~fault
        (Diff.Blame.build ~fault_desync:fault ~a:ra ~b:rb ())
  | None, Some _, None | None, None, Some _ ->
      Printf.eprintf "spf_diff: -a and -b go together\n";
      exit 2
  | None, None, None -> (
      let name =
        match workload with
        | Some n -> n
        | None ->
            Printf.eprintf
              "spf_diff: nothing to do — need --workload with --vs (live \
               diff), --record, or -a/-b (recorded diff)\n";
            exit 2
      in
      let w = find_workload_or_die name in
      let vs_spec =
        match vs with
        | Some s -> s
        | None ->
            Printf.eprintf "spf_diff: live diff needs --vs overrides\n";
            exit 2
      in
      let b =
        match B.apply_overrides base vs_spec with
        | Ok c -> c
        | Error e ->
            Printf.eprintf "spf_diff: %s\n" e;
            exit 2
      in
      if bisect then begin
        let outcome =
          B.run ~replay:(fun c -> (run_live ~workload:w c).H.cycles) ~a:base ~b
        in
        print_string (B.render ~a:base ~b outcome);
        (match max_replays with
        | Some n when outcome.B.replays > n ->
            Printf.eprintf "spf_diff: bisection took %d replays (max %d)\n"
              outcome.B.replays n;
            exit 1
        | _ -> ());
        match expect_axis with
        | None -> ()
        | Some name -> (
            match outcome.B.responsible with
            | top_ax :: _ when B.axis_name top_ax = String.lowercase_ascii name
              ->
                ()
            | axes ->
                Printf.eprintf
                  "spf_diff: expected responsible axis %s, bisection found \
                   [%s]\n"
                  name
                  (String.concat ", " (List.map B.axis_name axes));
                exit 1)
      end
      else
        let ra = rundata_of_live ~workload:w base in
        let rb = rundata_of_live ~workload:w b in
        emit_blame ~json ~top ~fault
          (Diff.Blame.build ~fault_desync:fault ~a:ra ~b:rb ()))

let () =
  let info =
    Cmdliner.Cmd.info "spf_diff" ~version:"1.0"
      ~doc:
        "Differential run diagnosis: blame a cycle delta on loops, \
         allocation sites, attribution classes and option axes."
  in
  let term =
    Cmdliner.Term.(
      const main $ workload_arg $ Cli_common.machine_arg
      $ Cli_common.hw_prefetch_arg $ Cli_common.mode_arg
      $ Cli_common.engine_arg $ Cli_common.prediction_arg $ threshold_arg
      $ no_passes_arg $ vs_arg $ bisect_arg $ expect_axis_arg $ max_replays_arg
      $ record_arg $ a_arg $ b_arg $ json_arg $ top_arg $ inject_arg)
  in
  exit (Cmdliner.Cmd.eval (Cmdliner.Cmd.v info term))
