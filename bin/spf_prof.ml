(* The object-centric profiler driver: run one workload with profiling
   hooks installed and render the top-down cycle accounting, the per-loop
   and per-allocation-site hot-spot tables, and the flamegraph /JSON
   exports. Every simulated cycle lands in exactly one bin, so the
   tables sum to the run's cycle count (checked here on every
   invocation, and --check-invariants promotes the check to a hard
   failure inside the harness). *)

let find_workload = Cli_common.find_workload

let workload_arg =
  Cmdliner.Arg.(
    required
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:"Workload name (see $(b,spf_run list)).")

let machine_arg = Cli_common.machine_arg
let hw_prefetch_arg = Cli_common.hw_prefetch_arg
let apply_hw_prefetch = Cli_common.apply_hw_prefetch
let mode_arg = Cli_common.mode_arg

let topdown_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "topdown" ]
        ~doc:
          "Print the top-down cycle accounting: the bin summary and the \
           hottest pcs (the default view when no other view is selected).")

let objects_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "objects" ]
        ~doc:
          "Print the object-centric table: demand stall cycles keyed by \
           the allocation site of the referenced object.")

let loops_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "loops" ]
        ~doc:
          "Print the per-loop rollup, joined with the prefetch pass's \
           planned actions per loop.")

let loop_arg =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "loop" ] ~docv:"ID"
        ~doc:"Print every profiled pc of loop $(docv), in pc order.")

let folded_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "folded" ] ~docv:"FILE"
        ~doc:
          "Write flamegraph.pl-compatible collapsed stacks \
           (method;loop;pc:instr;bin count) to $(docv).")

let json_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the full profile as JSON (schema spf_prof/v1) to $(docv).")

let top_arg =
  Cmdliner.Arg.(
    value & opt int 20
    & info [ "top" ] ~docv:"N" ~doc:"Rows to show in each table.")

let check_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "check-invariants" ]
        ~doc:
          "Assert the attribution and profiler conservation laws inside \
           the harness and exit non-zero on violation (they are also \
           checked here either way).")

let phased_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "phased" ]
        ~doc:"Enable Wu-style phased multiple-stride prefetching.")

let run name machine hw mode engine prediction topdown objects loops loop
    folded json top check phased =
  let machine = apply_hw_prefetch hw machine in
  match find_workload name with
  | None ->
      prerr_endline ("unknown workload: " ^ name);
      exit 1
  | Some w ->
      let opts =
        {
          Strideprefetch.Options.default with
          enable_phased = phased;
          check_invariants = check;
          prediction;
        }
      in
      let result =
        try Workloads.Harness.run ~opts ~profile:true ~engine ~mode ~machine w
        with Workloads.Harness.Invariant_violation msg ->
          prerr_endline ("invariant violation: " ^ msg);
          exit 2
      in
      let rep = Option.get result.profile in
      (* The conservation law is this tool's foundation; refuse to print
         tables that do not sum. *)
      (match Profile.Report.conservation_error rep with
      | Some msg ->
          prerr_endline ("BUG: " ^ msg);
          exit 2
      | None -> ());
      Printf.printf "workload: %s  machine: %s  mode: %s\n" result.workload
        result.machine
        (Strideprefetch.Options.mode_name result.mode);
      let any_view = topdown || objects || loops || loop <> None in
      if topdown || not any_view then
        Format.printf "@.%a@." (Profile.Report.pp_topdown ~top) rep;
      if loops then Format.printf "@.%a@." (Profile.Report.pp_loops ~top) rep;
      if objects then
        Format.printf "@.%a@." (Profile.Report.pp_objects ~top) rep;
      (match loop with
      | Some id ->
          Format.printf "@.%a@." (Profile.Report.pp_loop_detail ~loop:id) rep
      | None -> ());
      (match folded with
      | Some path ->
          let oc = open_out path in
          output_string oc (Profile.Report.folded rep);
          close_out oc;
          Printf.printf "folded stacks written to %s\n" path
      | None -> ());
      (match json with
      | Some path ->
          let oc = open_out path in
          output_string oc
            (Telemetry.Json.to_string (Profile.Report.to_json rep));
          output_char oc '\n';
          close_out oc;
          Printf.printf "profile JSON written to %s\n" path
      | None -> ())

let () =
  let info =
    Cmdliner.Cmd.info "spf_prof" ~version:"1.0"
      ~doc:
        "Object-centric cycle profiler for the stride-prefetching \
         simulator: top-down stall attribution per pc, loop and \
         allocation site, with flamegraph and JSON export."
  in
  exit
    (Cmdliner.Cmd.eval
       (Cmdliner.Cmd.v info
          Cmdliner.Term.(
            const run $ workload_arg $ machine_arg $ hw_prefetch_arg
            $ mode_arg $ Cli_common.engine_arg $ Cli_common.prediction_arg
            $ topdown_arg $ objects_arg $ loops_arg $ loop_arg
            $ folded_arg $ json_arg $ top_arg $ check_arg $ phased_arg)))
