(* Differential fuzzing driver for the stride-prefetching pass.

   Generates seeded random MiniJava programs and checks each one across
   the full configuration matrix (prefetch mode x pipeline x machine);
   see lib/fuzz. Exit status 0 when every program passed, 1 when any
   finding was produced, so the tool slots directly into CI. *)

open Cmdliner

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "seed" ] ~docv:"SEED"
        ~doc:
          "Campaign seed. Program $(i,i) of the campaign uses derived \
           seed SEED+$(i,i); replay a single finding with $(b,--seed) \
           (SEED+$(i,i)) $(b,--count) 1.")

let count_arg =
  Arg.(
    value & opt int 100
    & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of programs to generate.")

let max_size_arg =
  Arg.(
    value & opt int 8
    & info [ "max-size" ] ~docv:"SIZE"
        ~doc:
          "Size budget: scales class count, structure sizes, kernel count \
           and loop trip counts. 6-10 is a good fuzzing range.")

let shrink_arg =
  Arg.(
    value & opt bool true
    & info [ "shrink" ] ~docv:"BOOL"
        ~doc:"Minimize failing programs before reporting them.")

let shrink_attempts_arg =
  Arg.(
    value & opt int 400
    & info [ "shrink-attempts" ] ~docv:"N"
        ~doc:"Budget of oracle invocations per shrink.")

let dump_arg =
  Arg.(
    value & flag
    & info [ "dump" ]
        ~doc:
          "Print each generated program instead of checking it (generator \
           debugging).")

let inject_arg =
  Arg.(
    value & opt (some string) None
    & info [ "inject" ] ~docv:"FAULT"
        ~doc:
          "Oracle self-test: inject a deliberate fault and confirm the \
           oracle catches it. $(docv) is $(b,unguarded-spec-loads) \
           (speculative loads crash instead of yielding null when their \
           guard trips, simulating unguarded prefetch dereferences) or \
           $(b,skip-guard-dominance) (the codegen emits dereference \
           prefetches before their spec_load guard — runtime-benign, \
           caught only by the static lint cell) or $(b,engine-desync) \
           (the closure-compiled engine retires one extra instruction \
           per goto, invisible to program output and cycle counts — \
           caught only by the engine cross-check's full-stats diff) or \
           $(b,hw-desync) (runs on an RPT-prefetcher machine emit a \
           spurious output line, simulating a hardware model that leaks \
           into architectural state — caught only by the hardware \
           cross-check, which is the sole check that varies the \
           hardware model) or $(b,prediction-desync) (static/hybrid-tier \
           compilations prepend an observable instruction pair, shifting \
           every branch target — invisible to the inspect-tier matrix, \
           caught only by the prediction cross-check, which is the sole \
           check that varies the prediction tier) or \
           $(b,monitor-desync) (every window-boundary fire charges one \
           extra simulated cycle, making the monitor an observer that \
           participates — caught only by the monitor cross-check, the \
           sole check that arms a monitor).")

let quiet_arg =
  Arg.(
    value & flag & info [ "q"; "quiet" ] ~doc:"Only print the summary line.")

let run seed count max_size shrink shrink_attempts dump inject quiet =
  if dump then (
    for index = 0 to count - 1 do
      let g = Fuzz.Gen.generate ~seed:(seed + index) ~max_size in
      Printf.printf
        "// seed %d (heap limit %d bytes)\n%s\n"
        (seed + index) g.Fuzz.Gen.heap_limit_bytes (Fuzz.Gen.source g)
    done;
    0)
  else
    let tweak_options, tweak_prefetch =
      match inject with
      | None -> (None, None)
      | Some "unguarded-spec-loads" ->
          ( Some
              (fun (o : Vm.Interp.options) ->
                { o with Vm.Interp.unguarded_spec_loads = true }),
            None )
      | Some "skip-guard-dominance" ->
          ( None,
            Some
              (fun (o : Strideprefetch.Options.t) ->
                {
                  o with
                  Strideprefetch.Options.fault_skip_guard_dominance = true;
                }) )
      | Some "engine-desync" ->
          ( Some
              (fun (o : Vm.Interp.options) ->
                { o with Vm.Interp.fault_engine_desync = true }),
            None )
      | Some "prediction-desync" ->
          ( None,
            Some
              (fun (o : Strideprefetch.Options.t) ->
                {
                  o with
                  Strideprefetch.Options.fault_prediction_desync = true;
                }) )
      | Some "hw-desync" ->
          ( Some
              (fun (o : Vm.Interp.options) ->
                { o with Vm.Interp.fault_hw_desync = true }),
            None )
      | Some "monitor-desync" ->
          ( Some
              (fun (o : Vm.Interp.options) ->
                { o with Vm.Interp.fault_monitor_desync = true }),
            None )
      | Some other ->
          Printf.eprintf "unknown fault '%s'\n" other;
          exit 2
    in
    let progress ~index ~seed:_ =
      if (not quiet) && index > 0 && index mod 50 = 0 then (
        Printf.printf "  ... %d programs checked\n" index;
        flush stdout)
    in
    let campaign =
      Fuzz.Driver.run ?tweak_options ?tweak_prefetch ~shrink ~shrink_attempts
        ~progress ~campaign_seed:seed ~count ~max_size ()
    in
    List.iter
      (fun f ->
        if not quiet then
          Format.printf "%a@.@." Fuzz.Driver.pp_finding f
        else
          Printf.printf "FAIL seed=%d index=%d\n" f.Fuzz.Driver.seed
            f.Fuzz.Driver.index)
      campaign.Fuzz.Driver.findings;
    let failed = List.length campaign.Fuzz.Driver.findings in
    Printf.printf
      "fuzz: %d program(s), %d cell(s) each, seed %d: %d failure(s)\n"
      campaign.Fuzz.Driver.programs_run
      campaign.Fuzz.Driver.cells_per_program campaign.Fuzz.Driver.campaign_seed
      failed;
    if failed = 0 then 0 else 1

let cmd =
  let info =
    Cmd.info "spf_fuzz" ~version:"1.0"
      ~doc:
        "Differential fuzzing: generated MiniJava programs must behave \
         identically with stride prefetching off and on."
  in
  Cmd.v info
    Term.(
      const run $ seed_arg $ count_arg $ max_size_arg $ shrink_arg
      $ shrink_attempts_arg $ dump_arg $ inject_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
