(* The observability driver: run one workload with the full telemetry
   stack threaded through — effectiveness attribution, decision
   provenance, and the event-span pipeline — then render the per-site
   coverage/accuracy table and export Chrome-trace / JSONL files. *)

let find_workload = Cli_common.find_workload

let workload_arg =
  Cmdliner.Arg.(
    required
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:"Workload name (see $(b,spf_run list)).")

let machine_arg = Cli_common.machine_arg
let mode_arg = Cli_common.mode_arg
let hw_prefetch_arg = Cli_common.hw_prefetch_arg

let trace_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the event stream as Chrome trace_event JSON (load in \
           chrome://tracing or ui.perfetto.dev).")

let metrics_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the event stream as flat JSONL (one event per line).")

let explain_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print per-loop decision provenance: candidate sites, observed \
           delta histograms, detected patterns, the emitted plan and the \
           rejection reasons.")

let phased_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "phased" ]
        ~doc:"Enable Wu-style phased multiple-stride prefetching.")

let capacity_arg =
  Cmdliner.Arg.(
    value & opt int 65536
    & info [ "sink-capacity" ] ~docv:"N"
        ~doc:
          "Event-ring capacity; the oldest events are overwritten beyond \
           it (the drop count is recorded in the trace).")

let extra_of ~(w : Workloads.Workload.t) ~machine ~mode =
  [
    ("workload", Telemetry.Json.Str w.name);
    ("machine", Telemetry.Json.Str machine.Memsim.Config.name);
    ("mode", Telemetry.Json.Str (Strideprefetch.Options.mode_name mode));
  ]

let run name machine hw mode trace metrics explain phased capacity =
  match find_workload name with
  | None ->
      prerr_endline ("unknown workload: " ^ name);
      exit 1
  | Some w ->
      let machine =
        match hw with
        | None -> machine
        | Some hw -> { machine with Memsim.Config.hw_prefetch = hw }
      in
      let opts =
        { Strideprefetch.Options.default with enable_phased = phased }
      in
      let result =
        Workloads.Harness.run ~opts ~telemetry:true ~sink_capacity:capacity
          ~mode ~machine w
      in
      Printf.printf "workload: %s  machine: %s  mode: %s\n" result.workload
        result.machine
        (Strideprefetch.Options.mode_name result.mode);
      Printf.printf "cycles: %d  GCs: %d  methods compiled: %d\n"
        result.cycles result.gc_count result.methods_compiled;
      Format.printf "%a@." Memsim.Stats.pp result.stats;
      if explain then
        List.iter
          (fun rep -> Format.printf "%a@." Strideprefetch.Pass.pp_report rep)
          result.reports;
      (match result.effectiveness with
      | Some eff when eff.Workloads.Effectiveness.rows <> [] ->
          Format.printf "@.%a@." Workloads.Effectiveness.pp_table eff
      | Some _ ->
          print_endline
            "no prefetch sites executed (mode off, or nothing qualified)"
      | None -> ());
      let sink = Option.get result.sink in
      Printf.printf "telemetry: %d events recorded (%d dropped)\n"
        (Telemetry.Sink.total_events sink)
        (Telemetry.Sink.dropped sink);
      let other = extra_of ~w ~machine ~mode in
      (match trace with
      | Some path ->
          Telemetry.Trace.write_chrome ~other sink ~path;
          Printf.printf "chrome trace written to %s\n" path
      | None -> ());
      (match metrics with
      | Some path ->
          Telemetry.Trace.write_jsonl ~extra:other sink ~path;
          Printf.printf
            "JSONL metrics written to %s (%d events + summary, %d dropped)\n"
            path
            (List.length (Telemetry.Sink.events sink))
            (Telemetry.Sink.dropped sink)
      | None -> ())

let () =
  let info =
    Cmdliner.Cmd.info "spf_trace" ~version:"1.0"
      ~doc:
        "Prefetch-effectiveness attribution, decision provenance, and \
         trace export for the stride-prefetching simulator."
  in
  exit
    (Cmdliner.Cmd.eval
       (Cmdliner.Cmd.v info
          Cmdliner.Term.(
            const run $ workload_arg $ machine_arg $ hw_prefetch_arg
            $ mode_arg $ trace_arg $ metrics_arg $ explain_arg $ phased_arg
            $ capacity_arg)))
