(* spf_lint: run workloads (and optionally generated fuzz programs)
   through the mixed-mode JIT, then lint every method body of the
   executed program with the full analysis stack — the type-state
   verifier, the prefetch-safety checkers, and the plan-aware lints
   cross-checked against the pass's own loop reports. Diagnostics are
   pc-level, with the faulting instruction rendered inline.

   Exit status 0 when everything is clean, 1 when any finding was
   produced, 2 on usage errors — so the tool slots directly into CI
   (`dune build @lint`). *)

open Cmdliner

let all_workloads = Workloads.Specjvm.all @ Workloads.Javagrande.all
let all_modes =
  Strideprefetch.Options.[ Off; Inter; Inter_intra ]

let hw_prefetch_arg = Cli_common.hw_prefetch_arg
let apply_hw_prefetch = Cli_common.apply_hw_prefetch
let prediction_arg = Cli_common.prediction_arg

let predict_flag =
  Arg.(
    value & flag
    & info [ "predict" ]
        ~doc:
          "Agreement mode: run each workload with the address-algebra \
           predictor alongside full dynamic inspection and score the \
           static predictions against the inspected strides per LDG \
           site. Disagreements are reported as pc-level diagnostics; a \
           per-workload agreement table is printed at the end.")

let min_agreement_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "min-agreement" ] ~docv:"PCT"
        ~doc:
          "With $(b,--predict): exit non-zero if overall agreement \
           (agreed / decided claims) falls below $(docv) percent.")

let workload_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:"Lint only this workload (default: all seed workloads).")

let fuzz_arg =
  Arg.(
    value & opt int 0
    & info [ "fuzz" ] ~docv:"N"
        ~doc:
          "Also lint $(docv) generated programs (seeded, deterministic; \
           see $(b,--seed)).")

let seed_arg =
  Arg.(
    value & opt int 2026
    & info [ "s"; "seed" ] ~docv:"SEED"
        ~doc:
          "Base seed for $(b,--fuzz); program $(i,i) uses derived seed \
           SEED+$(i,i), matching spf_fuzz's protocol.")

let max_size_arg =
  Arg.(
    value & opt int 8
    & info [ "max-size" ] ~docv:"SIZE"
        ~doc:"Size budget for generated programs.")

let verify_each_pass_arg =
  Arg.(
    value & flag
    & info [ "verify-each-pass" ]
        ~doc:
          "Debug mode: re-verify the method body after every JIT pass \
           instead of linting once after the run; the first finding \
           aborts compilation naming the offending pass.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Print a line per configuration run.")

let skip_guard_arg =
  Arg.(
    value & flag
    & info [ "inject-skip-guard-dominance" ]
        ~doc:
          "Self-test: make the codegen emit dereference prefetches before \
           their spec_load guard and confirm the lint reports it.")

let config_name (w : Workloads.Workload.t) (machine : Memsim.Config.machine)
    mode =
  Printf.sprintf "%s/%s/%s" w.name machine.Memsim.Config.name
    (Strideprefetch.Options.mode_name mode)

(* Lint one (workload, machine, mode) cell. Returns (methods checked,
   findings printed). *)
let lint_one ~opts ~verify_each_pass ~verbose
    (w : Workloads.Workload.t) (machine : Memsim.Config.machine) mode =
  let name = config_name w machine mode in
  if verbose then (
    Printf.printf "-- %s\n" name;
    flush stdout);
  match
    Workloads.Harness.run ~opts ~verify_each_pass ~mode ~machine w
  with
  | exception Jit.Pipeline.Verification_failed
      { pass_name; method_name; message } ->
      Printf.printf "[%s] %s failed verification after pass '%s':\n  %s\n"
        name method_name pass_name message;
      (0, 1)
  | r ->
      let program = r.program in
      let require_guarded =
        Strideprefetch.Options.use_guarded opts machine
      in
      let methods = ref 0 and findings = ref 0 in
      Array.iter
        (fun (m : Vm.Classfile.method_info) ->
          incr methods;
          List.iter
            (fun d ->
              incr findings;
              Printf.printf "[%s] %s\n" name (Analysis.Diag.render ~meth:m d))
            (Analysis.Check.check_method ~program ~reports:r.reports
               ~scheduling_distance:
                 opts.Strideprefetch.Options.scheduling_distance
               ~require_guarded m))
        program.Vm.Classfile.methods;
      (!methods, !findings)

let fuzz_workload ~seed ~max_size index : Workloads.Workload.t =
  let g = Fuzz.Gen.generate ~seed:(seed + index) ~max_size in
  {
    Workloads.Workload.name = Printf.sprintf "fuzz-%d" (seed + index);
    suite = `Specjvm;
    description = "generated program (spf_lint corpus)";
    paper_note = "";
    source = Fuzz.Gen.source g;
    heap_limit_bytes = g.Fuzz.Gen.heap_limit_bytes;
  }

(* Agreement mode: one run per workload x machine with the predictor
   attached but inspection left at full depth, so every static claim has
   its dynamically inspected counterpart to be judged against. *)
let predict_run ~opts ~verbose ~min_agreement ~machines workloads =
  let min_samples = opts.Strideprefetch.Options.min_samples in
  let all_rows = ref [] in
  let scored = ref [] in
  let disagreements = ref 0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let wrows = ref [] in
      List.iter
        (fun (machine : Memsim.Config.machine) ->
          if verbose then (
            Printf.printf "-- predict %s/%s\n" w.name
              machine.Memsim.Config.name;
            flush stdout);
          let r =
            Workloads.Harness.run ~opts ~predict:true
              ~mode:Strideprefetch.Options.Inter_intra ~machine w
          in
          let rows =
            Strideprefetch.Pass.prediction_rows ~workload:w.name r.reports
          in
          wrows := !wrows @ rows;
          List.iter
            (fun (row : Strideprefetch.Predict.row) ->
              match Strideprefetch.Predict.classify ~min_samples row with
              | Strideprefetch.Predict.Disagree ->
                  incr disagreements;
                  let d =
                    Analysis.Diag.warning ~checker:"predict-agreement"
                      ~pc:row.Strideprefetch.Predict.r_pc
                      "loop L%d site %d: static analysis predicted %s \
                       but %d inspected addresses concluded %s"
                      row.Strideprefetch.Predict.r_loop
                      row.Strideprefetch.Predict.r_site
                      (match row.Strideprefetch.Predict.r_static with
                      | Some s -> Printf.sprintf "stride %d" s
                      | None -> "no stride")
                      row.Strideprefetch.Predict.r_observations
                      (match row.Strideprefetch.Predict.r_inspected with
                      | Some s -> Printf.sprintf "stride %d" s
                      | None -> "no dominant stride")
                  in
                  let meth =
                    Array.to_seq r.program.Vm.Classfile.methods
                    |> Seq.find (fun (m : Vm.Classfile.method_info) ->
                           m.Vm.Classfile.method_name
                           = row.Strideprefetch.Predict.r_method)
                  in
                  (match meth with
                  | Some m ->
                      Printf.printf "[%s/%s] %s\n" w.name
                        machine.Memsim.Config.name
                        (Analysis.Diag.render ~meth:m d)
                  | None ->
                      Printf.printf "[%s/%s] %s: %s\n" w.name
                        machine.Memsim.Config.name
                        row.Strideprefetch.Predict.r_method
                        (Analysis.Diag.render_plain d))
              | _ -> ())
            rows)
        machines;
      all_rows := !all_rows @ !wrows;
      scored :=
        (w.name, Strideprefetch.Predict.score ~min_samples !wrows)
        :: !scored)
    workloads;
  print_string (Strideprefetch.Predict.render_table (List.rev !scored));
  print_newline ();
  let total = Strideprefetch.Predict.score ~min_samples !all_rows in
  let pct = Strideprefetch.Predict.agreement_pct total in
  Printf.printf
    "spf_lint --predict: %d site(s), %d claimed, %d disagreement(s), \
     agreement %.1f%%\n"
    total.Strideprefetch.Predict.sites total.Strideprefetch.Predict.claimed
    !disagreements pct;
  match min_agreement with
  | Some floor when pct < floor ->
      Printf.printf "spf_lint: agreement %.1f%% is below the %.1f%% floor\n"
        pct floor;
      1
  | _ -> 0

let run workload fuzz seed max_size verify_each_pass verbose skip_guard hw
    prediction predict min_agreement =
  let workloads =
    match workload with
    | None -> all_workloads
    | Some name -> (
        match
          List.find_opt
            (fun (w : Workloads.Workload.t) ->
              String.lowercase_ascii w.name = String.lowercase_ascii name)
            all_workloads
        with
        | Some w -> [ w ]
        | None ->
            Printf.eprintf "unknown workload: %s\n" name;
            exit 2)
  in
  let workloads =
    workloads @ List.init fuzz (fuzz_workload ~seed ~max_size)
  in
  let opts =
    {
      Strideprefetch.Options.default with
      Strideprefetch.Options.fault_skip_guard_dominance = skip_guard;
      prediction;
    }
  in
  let machines = List.map (apply_hw_prefetch hw) Memsim.Config.machines in
  if predict then
    exit (predict_run ~opts ~verbose ~min_agreement ~machines workloads);
  let runs = ref 0 and methods = ref 0 and findings = ref 0 in
  List.iter
    (fun w ->
      List.iter
        (fun machine ->
          List.iter
            (fun mode ->
              let m, f =
                lint_one ~opts ~verify_each_pass ~verbose w machine mode
              in
              incr runs;
              methods := !methods + m;
              findings := !findings + f)
            all_modes)
        machines)
    workloads;
  Printf.printf "spf_lint: %d configuration(s), %d method bodies checked: \
                 %d finding(s)\n"
    !runs !methods !findings;
  if skip_guard then
    (* self-test semantics: the injected miscompile MUST be reported *)
    if !findings > 0 then (
      Printf.printf
        "spf_lint: injected guard-dominance fault was caught (self-test \
         passed)\n";
      0)
    else (
      Printf.printf
        "spf_lint: injected guard-dominance fault went UNREPORTED\n";
      1)
  else if !findings = 0 then 0
  else 1

let cmd =
  let info =
    Cmd.info "spf_lint" ~version:"1.0"
      ~doc:
        "Static analysis of prefetch-optimized bytecode: type-state \
         verification, prefetch-safety checking and plan-aware linting \
         of every JIT-transformed method body."
  in
  Cmd.v info
    Term.(
      const run $ workload_arg $ fuzz_arg $ seed_arg $ max_size_arg
      $ verify_each_pass_arg $ verbose_arg $ skip_guard_arg
      $ hw_prefetch_arg $ prediction_arg $ predict_flag $ min_agreement_arg)

let () = exit (Cmd.eval' cmd)
