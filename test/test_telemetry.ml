(* Tests for the telemetry layer: the canonical stats field list, the
   JSON pipeline, the event ring, the site registry, the observer-effect
   golden (telemetry on/off bit-identical), deterministic
   coverage/accuracy on handcrafted strided loops, and well-formedness
   of the Chrome-trace / JSONL exports. *)

module S = Memsim.Stats
module J = Telemetry.Json
module A = Telemetry.Attrib
module W = Workloads.Workload
module H = Workloads.Harness
module E = Workloads.Effectiveness
module O = Strideprefetch.Options

(* ------------------------------------------------------------------ *)
(* Stats: the canonical field list. *)

let test_stats_field_count () =
  (* Every counter is an immediate int, so the runtime block size of the
     record equals the number of fields: adding a counter without
     extending [S.fields] fails here. *)
  Alcotest.(check int)
    "fields covers every record field"
    (Obj.size (Obj.repr (S.create ())))
    (List.length S.fields);
  let names = List.map (fun (n, _, _) -> n) S.fields in
  Alcotest.(check int)
    "field names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (n ^ " is a declared field")
        true (List.mem n names))
    S.telemetry_only

let test_stats_alists () =
  let s = S.create () in
  (* distinct value per field through the canonical setters *)
  List.iteri (fun i (_, _, set) -> set s (100 + i)) S.fields;
  Alcotest.(check (list (pair string int)))
    "to_alist follows the field list"
    (List.mapi (fun i (n, _, _) -> (n, 100 + i)) S.fields)
    (S.to_alist s);
  Alcotest.(check (list (pair string int)))
    "core_alist = to_alist minus telemetry_only"
    (List.filter
       (fun (n, _) -> not (List.mem n S.telemetry_only))
       (S.to_alist s))
    (S.core_alist s);
  let c = S.copy s in
  Alcotest.(check (list (pair string int)))
    "copy preserves every counter" (S.to_alist s) (S.to_alist c);
  let fresh = S.create () in
  S.copy_into s ~into:fresh;
  Alcotest.(check (list (pair string int)))
    "copy_into preserves every counter" (S.to_alist s) (S.to_alist fresh);
  Alcotest.(check (list (pair string int)))
    "add is component-wise"
    (List.map (fun (n, v) -> (n, 2 * v)) (S.to_alist s))
    (S.to_alist (S.add s s));
  S.reset s;
  List.iter
    (fun (n, v) -> Alcotest.(check int) (n ^ " reset to 0") 0 v)
    (S.to_alist s)

(* ------------------------------------------------------------------ *)
(* JSON: print/parse round trip. *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd");
        ("i", J.Int (-42));
        ("f", J.Float 1.5);
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.Str ""; J.Obj [] ]);
      ]
  in
  (match J.parse (J.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match J.parse "{\"a\": 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated object accepted");
  match J.parse "1 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

(* Parser and printer edge cases: escape handling, numeric extremes,
   deep nesting, duplicate keys. *)
let test_json_edge_cases () =
  (* \u escapes: ASCII code points become the literal character; the
     single-byte printer degrades non-ASCII to '?' rather than emitting
     broken UTF-8. Bad hex is a parse error, not a silent skip. *)
  (match J.parse "\"\\u0041\"" with
  | Ok (J.Str "A") -> ()
  | Ok v -> Alcotest.failf "\\u0041 parsed as %s" (J.to_string v)
  | Error e -> Alcotest.failf "\\u0041 rejected: %s" e);
  (match J.parse "\"\\u00e9\"" with
  | Ok (J.Str "?") -> ()
  | Ok v -> Alcotest.failf "\\u00e9 parsed as %s" (J.to_string v)
  | Error e -> Alcotest.failf "\\u00e9 rejected: %s" e);
  (match J.parse "\"\\uZZZZ\"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad \\u hex accepted");
  (* Control characters survive a print/parse cycle via \u escapes. *)
  let ctl = J.Str "\x01\x02\x1f" in
  (match J.parse (J.to_string ctl) with
  | Ok v -> Alcotest.(check bool) "control chars round trip" true (v = ctl)
  | Error e -> Alcotest.failf "control-char string rejected: %s" e);
  (* Integer extremes round-trip as Int, not as a lossy float. *)
  let ints = J.List [ J.Int max_int; J.Int min_int; J.Int 0 ] in
  (match J.parse (J.to_string ints) with
  | Ok v -> Alcotest.(check bool) "max_int/min_int round trip" true (v = ints)
  | Error e -> Alcotest.failf "integer extremes rejected: %s" e);
  (* Deep nesting: the parser is not recursion-limited at report depths. *)
  let deep = String.concat "" (List.init 200 (fun _ -> "[")) ^ "1"
             ^ String.concat "" (List.init 200 (fun _ -> "]")) in
  (match J.parse deep with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "200-deep nesting rejected: %s" e);
  (* Duplicate keys: member returns the first binding; the printer
     preserves both (it never deduplicates behind the writer's back). *)
  match J.parse "{\"k\": 1, \"k\": 2}" with
  | Error e -> Alcotest.failf "duplicate keys rejected: %s" e
  | Ok dup ->
      (match J.member "k" dup with
      | Some (J.Int 1) -> ()
      | _ -> Alcotest.fail "member does not return the first duplicate");
      Alcotest.(check string) "printer keeps both bindings"
        "{\"k\":1,\"k\":2}" (J.to_string dup)

(* Table ratio guards: division by zero renders as absent, and rounding
   never fabricates an exact 0% or 100% for a boundary-adjacent count. *)
let test_table_guards () =
  let check_cell name want got = Alcotest.(check string) name want got in
  let module T = Telemetry.Table in
  check_cell "0/0 is absent" "-" (T.cell_ratio 0 0);
  check_cell "negative denominator is absent" "-" (T.cell_ratio 5 (-1));
  check_cell "true zero" "0.0%" (T.cell_ratio 0 10);
  check_cell "tiny nonzero never rounds to 0.0%" "0.1%"
    (T.cell_ratio 1 100000);
  check_cell "near-total never rounds to 100.0%" "99.9%"
    (T.cell_ratio 99999 100000);
  check_cell "exact total is 100.0%" "100.0%" (T.cell_ratio 10 10);
  check_cell "plain ratio" "50.0%" (T.cell_ratio 1 2);
  check_cell "NaN pct is absent" "-" (T.cell_pct Float.nan);
  check_cell "+inf pct is absent" "-" (T.cell_pct Float.infinity);
  check_cell "-inf pct is absent" "-" (T.cell_pct Float.neg_infinity);
  check_cell "plain pct" "12.5%" (T.cell_pct 0.125)

(* ------------------------------------------------------------------ *)
(* The event ring: overwrite-on-wrap with a drop count. *)

(* Drops self-report: once the drop count crosses a doubling mark the
   sink records a ["ring.dropped"] counter event in the ring itself, so
   truncation is visible mid-run, not only at exit. With capacity 4 and
   ten instants e0..e9 the add sequence is forced:

     e0 e1 e2 e3          fill, no drops
     e4  -> d=1 >= mark 1  -> C(d=1), mark 2
     e5  -> d=3 >= mark 2  -> C(d=3), mark 6
     e6  -> d=5 <  mark 6
     e7  -> d=6 >= mark 6  -> C(d=6), mark 12
     e8 e9                 -> d=9

   13 adds total, 9 dropped, retained window [e7; C; e8; e9]. *)
let test_ring_wrap () =
  let sink = Telemetry.Sink.create ~capacity:4 () in
  for i = 0 to 9 do
    Telemetry.Sink.instant sink (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "user events + 3 self-reports counted" 13
    (Telemetry.Sink.total_events sink);
  Alcotest.(check int) "oldest overwritten" 9 (Telemetry.Sink.dropped sink);
  Alcotest.(check (list string))
    "retained window is the newest events, oldest first"
    [ "e7"; "ring.dropped"; "e8"; "e9" ]
    (List.map
       (fun (e : Telemetry.Event.t) -> e.name)
       (Telemetry.Sink.events sink));
  let c =
    List.find
      (fun (e : Telemetry.Event.t) -> e.name = "ring.dropped")
      (Telemetry.Sink.events sink)
  in
  Alcotest.(check bool) "self-report is a counter" true
    (c.phase = Telemetry.Event.Counter);
  Alcotest.(check bool) "self-report carries the drop count at fire time"
    true
    (List.assoc_opt "dropped" c.args = Some (Telemetry.Json.Int 6))

(* ------------------------------------------------------------------ *)
(* The site registry. *)

let test_attrib_registry () =
  let t = A.create () in
  let k0 = A.Inter_site { method_id = 3; site = 7 } in
  let k1 = A.Indirect_site { method_id = 3; reg = 1; offset = 8 } in
  let id0 = A.site_id t k0 in
  let id1 = A.site_id t k1 in
  Alcotest.(check int) "dense ids from 0" 0 id0;
  Alcotest.(check int) "next id" 1 id1;
  Alcotest.(check int) "allocate-or-reuse" id0 (A.site_id t k0);
  Alcotest.(check int) "n_sites" 2 (A.n_sites t);
  Alcotest.(check bool) "key_of_id round trip" true (A.key_of_id t id1 = k1);
  Alcotest.(check bool) "unregistered meta" true (A.meta_of_id t id0 = None);
  let meta =
    {
      A.method_name = "K.walk";
      loop_id = 0;
      kind = A.Intra;
      anchor_site = 2;
      target_site = 5;
    }
  in
  A.register t k0 meta;
  Alcotest.(check bool) "meta joined by key" true (A.meta_of_id t id0 = Some meta);
  let dk = A.demand_key ~method_id:123 ~site:456 in
  Alcotest.(check int) "demand_key method" 123 (A.demand_key_method dk);
  Alcotest.(check int) "demand_key site" 456 (A.demand_key_site dk)

(* ------------------------------------------------------------------ *)
(* Harness fixtures: handcrafted strided loops, hot enough to be JIT
   compiled under the harness's default options. *)

let workload ~name source =
  {
    W.name;
    suite = `Specjvm;
    description = "telemetry test fixture";
    paper_note = "";
    source;
    heap_limit_bytes = 16 * 1024 * 1024;
  }

(* Array-of-objects walk: allocation order gives the field load a large
   constant inter-iteration stride (the object footprint), so the pass
   emits a plain inter prefetch for it. The padding keeps the stride
   above half a cache line (small strides are rejected as already
   covered). *)
let walk =
  workload ~name:"telemetry-walk"
    {|
class Cell {
  int v;
  int p0; int p1; int p2; int p3; int p4; int p5; int p6; int p7;
  int p8; int p9; int p10; int p11; int p12; int p13; int p14; int p15;
  Cell(int x) { v = x; }
}
class K {
  static int walk(Cell[] cs, int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = (acc + cs[i].v) % 7919; }
    return acc;
  }
  static void main() {
    Cell[] cs = new Cell[4000];
    for (int i = 0; i < 4000; i = i + 1) { cs[i] = new Cell(i * 3); }
    int acc = 0;
    for (int r = 0; r < 6; r = r + 1) { acc = (acc + K.walk(cs, 4000)) % 7919; }
    print(acc);
  }
}
|}

(* Shuffled ref-array scan: the permutation destroys the inter stride of
   the dereferenced field load, so the pass falls back to the paper's
   dereference scheme — a guarded spec_load of the upcoming ref plus an
   indirect prefetch through it (spec + deref site kinds). *)
let scan =
  workload ~name:"telemetry-scan"
    {|
class Rec {
  int p0; int p1; int p2; int p3; int p4; int p5; int p6; int p7;
  int p8; int p9; int p10; int p11; int p12; int p13; int p14; int p15;
  int key;
  Rec(int x) { key = x; }
}
class K {
  static int scan(Rec[] rs, int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      Rec r = rs[i];
      acc = (acc + r.key) % 7919;
    }
    return acc;
  }
  static void main() {
    Rec[] rs = new Rec[8000];
    for (int i = 0; i < 8000; i = i + 1) { rs[i] = new Rec(i * 3); }
    for (int i = 0; i < 8000; i = i + 1) {
      int j = (i * 4973) % 8000;
      Rec t = rs[i]; rs[i] = rs[j]; rs[j] = t;
    }
    int acc = 0;
    for (int t = 0; t < 6; t = t + 1) { acc = (acc + K.scan(rs, 8000)) % 7919; }
    print(acc);
  }
}
|}

let machine = Memsim.Config.pentium4

let run ?(telemetry = false) w =
  H.run ~telemetry ~mode:O.Inter_intra ~machine w

(* One simulation per fixture/config, shared across the tests below. *)
let walk_plain = lazy (run walk)
let walk_telem = lazy (run ~telemetry:true walk)
let scan_telem = lazy (run ~telemetry:true scan)

(* ------------------------------------------------------------------ *)
(* The observer-effect golden: telemetry observes, never participates. *)

let test_golden_bit_identical () =
  let plain = Lazy.force walk_plain and telem = Lazy.force walk_telem in
  Alcotest.(check string) "output identical" plain.H.output telem.H.output;
  Alcotest.(check int) "cycles bit-identical" plain.H.cycles telem.H.cycles;
  Alcotest.(check (list (pair string int)))
    "every core counter bit-identical"
    (S.core_alist plain.H.stats)
    (S.core_alist telem.H.stats);
  (* the plain run must not even maintain the telemetry-only counters *)
  List.iter
    (fun (n, v) ->
      if List.mem n S.telemetry_only then
        Alcotest.(check int) (n ^ " zero in plain run") 0 v)
    (S.to_alist plain.H.stats);
  Alcotest.(check bool) "plain run has no sink" true (plain.H.sink = None);
  Alcotest.(check bool)
    "plain run has no effectiveness report" true
    (plain.H.effectiveness = None)

(* ------------------------------------------------------------------ *)
(* Deterministic coverage/accuracy on the handcrafted loops. *)

let check_conservation label (eff : E.t) =
  let t = eff.totals in
  Alcotest.(check int)
    (label ^ ": issued = cancelled+redundant+redundant_hw+useful+late+useless")
    t.Memsim.Attribution.issued
    (t.cancelled + t.redundant + t.redundant_hw + t.useful + t.late
   + t.useless);
  List.iter
    (fun (r : E.site_row) ->
      let c = r.counters in
      Alcotest.(check int)
        (Format.asprintf "%s: site %a books balance" label A.pp_key r.key)
        c.Memsim.Attribution.issued
        (c.cancelled + c.redundant + c.redundant_hw + c.useful + c.late
       + c.useless))
    eff.rows

let in_unit label v =
  Alcotest.(check bool)
    (Printf.sprintf "%s in [0,1] (got %g)" label v)
    true
    (v >= 0.0 && v <= 1.0)

let check_effectiveness label (r : H.run_result) =
  match r.H.effectiveness with
  | None -> Alcotest.fail (label ^ ": no effectiveness report")
  | Some eff ->
      Alcotest.(check bool) (label ^ ": sites attributed") true (eff.rows <> []);
      check_conservation label eff;
      Alcotest.(check bool)
        (label ^ ": some prefetches were useful")
        true
        (eff.totals.Memsim.Attribution.useful > 0);
      in_unit (label ^ ": total coverage") eff.total_coverage;
      in_unit (label ^ ": total accuracy") eff.total_accuracy;
      List.iter
        (fun (row : E.site_row) ->
          Alcotest.(check bool)
            (Format.asprintf "%s: %a registered by the pass" label A.pp_key
               row.key)
            true (row.meta <> None);
          in_unit "site coverage" row.coverage;
          in_unit "site accuracy" row.accuracy;
          (* the stored ratios are exactly the definition *)
          let c = row.counters in
          let expect num den =
            if den <= 0 then 0.0 else float_of_int num /. float_of_int den
          in
          Alcotest.(check (float 1e-9))
            "accuracy = useful/issued"
            (expect c.Memsim.Attribution.useful c.issued)
            row.accuracy;
          Alcotest.(check (float 1e-9))
            "coverage = useful/(useful+target misses)"
            (expect c.Memsim.Attribution.useful
               (c.useful + row.target_misses))
            row.coverage)
        eff.rows;
      Alcotest.(check bool) (label ^ ": kind rollups") true (eff.kinds <> []);
      eff

let test_effectiveness_walk () =
  let eff = check_effectiveness "walk" (Lazy.force walk_telem) in
  (* allocation order -> constant object-footprint stride -> inter *)
  Alcotest.(check bool)
    "inter sites attributed" true
    (List.exists (fun (k : E.kind_rollup) -> k.kind_name = "inter") eff.kinds)

let test_effectiveness_scan () =
  let eff = check_effectiveness "scan" (Lazy.force scan_telem) in
  Alcotest.(check bool)
    "spec sites attributed" true
    (List.exists (fun (k : E.kind_rollup) -> k.kind_name = "spec") eff.kinds);
  Alcotest.(check bool)
    "deref sites attributed" true
    (List.exists (fun (k : E.kind_rollup) -> k.kind_name = "deref") eff.kinds)

let test_determinism () =
  (* same cell, fresh run: identical books *)
  let a = Lazy.force walk_telem and b = run ~telemetry:true walk in
  let totals (r : H.run_result) =
    let t = (Option.get r.H.effectiveness).E.totals in
    [
      t.Memsim.Attribution.issued; t.cancelled; t.redundant; t.useful; t.late;
      t.useless;
    ]
  in
  Alcotest.(check (list int))
    "attribution totals reproducible" (totals a) (totals b);
  Alcotest.(check int) "cycles reproducible" a.H.cycles b.H.cycles

(* ------------------------------------------------------------------ *)
(* Decision provenance: reports carry inspection evidence; the sink
   carries explain instants and the pipeline spans. *)

let test_provenance () =
  let r = Lazy.force scan_telem in
  Alcotest.(check bool) "loop reports produced" true (r.H.reports <> []);
  let rendered =
    String.concat "\n"
      (List.map
         (Format.asprintf "%a" Strideprefetch.Pass.pp_report)
         r.H.reports)
  in
  Alcotest.(check bool)
    "pp_report prints inspection evidence" true
    (Helpers.contains rendered "evidence L");
  Alcotest.(check bool)
    "pp_report prints delta histograms" true
    (Helpers.contains rendered "deltas");
  let events = Telemetry.Sink.events (Option.get r.H.sink) in
  let has ?phase ~cat ~name () =
    List.exists
      (fun (e : Telemetry.Event.t) ->
        e.cat = cat && e.name = name
        && match phase with None -> true | Some p -> e.phase = p)
      events
  in
  Alcotest.(check bool) "explain instants recorded" true
    (has ~phase:Telemetry.Event.Instant ~cat:"explain" ~name:"loop-decision" ());
  Alcotest.(check bool) "compile spans recorded" true
    (has ~phase:Telemetry.Event.Span ~cat:"jit" ~name:"compile" ());
  Alcotest.(check bool) "prefetch-pass spans recorded" true
    (has ~phase:Telemetry.Event.Span ~cat:"jit" ~name:"pass:stride-prefetch" ());
  Alcotest.(check bool) "inspection spans recorded" true
    (has ~phase:Telemetry.Event.Span ~cat:"inspect" ~name:"inspect" ());
  Alcotest.(check bool) "final stats counter recorded" true
    (has ~phase:Telemetry.Event.Counter ~cat:"stats" ~name:"final-stats" ())

(* ------------------------------------------------------------------ *)
(* Export well-formedness. *)

let test_chrome_trace_well_formed () =
  let r = Lazy.force walk_telem in
  let sink = Option.get r.H.sink in
  let doc =
    Telemetry.Trace.chrome_json ~other:[ ("workload", J.Str r.H.workload) ]
      sink
  in
  match J.parse (J.to_string doc) with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok parsed ->
      let events =
        Option.get (J.to_list_opt (Option.get (J.member "traceEvents" parsed)))
      in
      Alcotest.(check int)
        "every retained event exported"
        (List.length (Telemetry.Sink.events sink))
        (List.length events);
      List.iter
        (fun e ->
          (match J.member "name" e with
          | Some (J.Str _) -> ()
          | _ -> Alcotest.fail "event without name");
          (match J.member "ph" e with
          | Some (J.Str ("X" | "i" | "C")) -> ()
          | _ -> Alcotest.fail "unknown phase letter");
          (match J.member "ts" e with
          | Some (J.Float ts) ->
              Alcotest.(check bool) "ts non-negative" true (ts >= 0.0)
          | Some (J.Int ts) ->
              Alcotest.(check bool) "ts non-negative" true (ts >= 0)
          | _ -> Alcotest.fail "event without ts");
          match J.member "ph" e with
          | Some (J.Str "X") when J.member "dur" e = None ->
              Alcotest.fail "span without dur"
          | _ -> ())
        events;
      let other = Option.get (J.member "otherData" parsed) in
      (match J.member "total_events" other with
      | Some (J.Int n) ->
          Alcotest.(check int)
            "otherData.total_events" (Telemetry.Sink.total_events sink) n
      | _ -> Alcotest.fail "otherData.total_events missing");
      match J.member "workload" other with
      | Some (J.Str w) -> Alcotest.(check string) "other fields kept" r.H.workload w
      | _ -> Alcotest.fail "caller-supplied otherData field missing"

let test_jsonl_well_formed () =
  let r = Lazy.force walk_telem in
  let sink = Option.get r.H.sink in
  let lines =
    Telemetry.Trace.jsonl_lines ~extra:[ ("machine", J.Str r.H.machine) ] sink
  in
  (* Event lines, plus the trailing summary object. *)
  Alcotest.(check int)
    "one line per retained event plus the summary"
    (List.length (Telemetry.Sink.events sink) + 1)
    (List.length lines);
  let rec split_last acc = function
    | [] -> assert false
    | [ last ] -> (List.rev acc, last)
    | l :: rest -> split_last (l :: acc) rest
  in
  let event_lines, summary_line = split_last [] lines in
  List.iter
    (fun line ->
      match J.parse line with
      | Error e -> Alcotest.failf "line does not parse: %s (%s)" e line
      | Ok v -> (
          (match J.member "name" v with
          | Some (J.Str _) -> ()
          | _ -> Alcotest.fail "line without name");
          match J.member "machine" v with
          | Some (J.Str m) ->
              Alcotest.(check string) "extra stamped on every line"
                r.H.machine m
          | _ -> Alcotest.fail "extra field missing"))
    event_lines;
  match J.parse summary_line with
  | Error e -> Alcotest.failf "summary does not parse: %s" e
  | Ok v -> (
      (match J.member "machine" v with
      | Some (J.Str m) ->
          Alcotest.(check string) "extra stamped on the summary" r.H.machine m
      | _ -> Alcotest.fail "summary missing extra field");
      match J.member "summary" v with
      | Some (J.Obj fields) ->
          Alcotest.(check bool) "summary.total_events" true
            (List.assoc_opt "total_events" fields
            = Some (J.Int (Telemetry.Sink.total_events sink)));
          Alcotest.(check bool) "summary.dropped_events" true
            (List.assoc_opt "dropped_events" fields
            = Some (J.Int (Telemetry.Sink.dropped sink)))
      | _ -> Alcotest.fail "last line is not the summary object")

let suite =
  [
    ("stats: canonical field list is complete", `Quick, test_stats_field_count);
    ("stats: alists/copy/add/reset from one list", `Quick, test_stats_alists);
    ("json: print/parse round trip", `Quick, test_json_roundtrip);
    ("json: parser/printer edge cases", `Quick, test_json_edge_cases);
    ("table: ratio guards at the boundaries", `Quick, test_table_guards);
    ("sink: ring wraps and counts drops", `Quick, test_ring_wrap);
    ("attrib: dense site registry", `Quick, test_attrib_registry);
    ("golden: telemetry on/off bit-identical", `Slow, test_golden_bit_identical);
    ("effectiveness: strided array walk (inter)", `Slow,
     test_effectiveness_walk);
    ("effectiveness: shuffled ref scan (spec+deref)", `Slow,
     test_effectiveness_scan);
    ("effectiveness: attribution deterministic", `Slow, test_determinism);
    ("provenance: evidence, explain records, spans", `Slow, test_provenance);
    ("export: chrome trace well-formed", `Slow, test_chrome_trace_well_formed);
    ("export: jsonl well-formed", `Slow, test_jsonl_well_formed);
  ]
