(* The RPT hardware-prefetcher suite: the Chen/Baer state machine unit
   by unit (transitions, degree/distance geometry, page clipping,
   aliasing, reset determinism), then the co-simulation golden laws at
   hierarchy level — hw=none is bit-identical to a zero-stream unit, and
   the RPT's pc indexing is engine-invariant (the switch and closure
   engines must feed it identical pcs, or cycle counts drift). *)

module Hw = Memsim.Hw_prefetch
module C = Memsim.Config
module W = Workloads.Workload
module H = Workloads.Harness

let rpt ?(table = 64) ?(degree = 1) ?(distance = 4) () =
  Hw.create
    ~model:(C.Hw_rpt { table_size = table; degree; distance })
    ~line_bytes:64 ~page_bytes:4096

let state t pc = Option.value ~default:"-" (Hw.rpt_state_name t ~pc)

let check_targets = Alcotest.(check (list int))
let check_state = Alcotest.(check string)

(* Initial --match--> Steady, --mismatch--> Transient;
   Transient --match--> Steady, --mismatch--> No_pred;
   Steady --mismatch--> Initial (stride kept);
   No_pred --match--> Transient. *)
let test_state_machine () =
  let t = rpt () in
  let pc = 5 in
  check_targets "first touch allocates, no prefetch" []
    (Hw.observe_miss t ~pc ~addr:0);
  check_state "fresh tracker starts Initial" "initial" (state t pc);
  check_targets "Initial mismatch trains the stride" []
    (Hw.observe_miss t ~pc ~addr:8);
  check_state "Initial -> Transient on mismatch" "transient" (state t pc);
  (* Stride 8 repeats: Transient -> Steady, and the first prefetch fires
     at addr + stride*distance = 16 + 32 = 48, line-aligned to 0. *)
  check_targets "Transient match prefetches" [ 0 ]
    (Hw.observe_miss t ~pc ~addr:16);
  check_state "Transient -> Steady on match" "steady" (state t pc);
  check_targets "Steady match keeps prefetching" [ 0 ]
    (Hw.observe_miss t ~pc ~addr:24);
  check_state "Steady stays Steady on match" "steady" (state t pc);
  (* A broken stride demotes Steady to Initial but keeps the old stride:
     one confirming miss re-promotes straight to Steady. *)
  check_targets "Steady mismatch stops prefetching" []
    (Hw.observe_miss t ~pc ~addr:100);
  check_state "Steady -> Initial on mismatch" "initial" (state t pc);
  check_targets "kept stride reconfirms in one miss" [ 128 ]
    (Hw.observe_miss t ~pc ~addr:108);
  check_state "Initial -> Steady on match" "steady" (state t pc);
  (* The NoPred arm: two consecutive mismatches park the tracker, and it
     needs two matches to climb back to Steady. *)
  let pc = 6 in
  ignore (Hw.observe_miss t ~pc ~addr:0);
  ignore (Hw.observe_miss t ~pc ~addr:8);
  check_targets "second mismatch parks the tracker" []
    (Hw.observe_miss t ~pc ~addr:24);
  check_state "Transient -> No_pred on mismatch" "nopred" (state t pc);
  check_targets "No_pred match does not prefetch yet" []
    (Hw.observe_miss t ~pc ~addr:40);
  check_state "No_pred -> Transient on match" "transient" (state t pc);
  check_targets "second match resumes prefetching" [ 64 ]
    (Hw.observe_miss t ~pc ~addr:56);
  check_state "Transient -> Steady" "steady" (state t pc)

let train t ~pc ~start ~stride =
  ignore (Hw.observe_miss t ~pc ~addr:start);
  ignore (Hw.observe_miss t ~pc ~addr:(start + stride))

let test_degree_and_distance () =
  let t = rpt ~degree:3 ~distance:2 () in
  let pc = 1 in
  train t ~pc ~start:0 ~stride:64;
  (* Steady at 128: degree 3 targets at stride*(distance+d), nearest
     first — 256, 320, 384, all line-aligned, all within the page. *)
  check_targets "degree>1 issues nearest-first" [ 256; 320; 384 ]
    (Hw.observe_miss t ~pc ~addr:128);
  (* Zero stride must never prefetch even from Steady. *)
  let pc = 2 in
  ignore (Hw.observe_miss t ~pc ~addr:512);
  ignore (Hw.observe_miss t ~pc ~addr:512);
  check_targets "zero stride is never prefetched" []
    (Hw.observe_miss t ~pc ~addr:512);
  check_state "zero-stride tracker still reaches Steady" "steady"
    (state t pc)

let test_page_clipping () =
  (* All targets beyond the 4 KiB page of the triggering miss: dropped. *)
  let t = rpt ~degree:2 ~distance:4 () in
  let pc = 1 in
  train t ~pc ~start:1024 ~stride:512;
  check_targets "whole window past the page boundary" []
    (Hw.observe_miss t ~pc ~addr:2048);
  (* Partial clipping: first target in-page, second out. *)
  let t = rpt ~degree:2 ~distance:1 () in
  let pc = 1 in
  train t ~pc ~start:2048 ~stride:512;
  check_targets "clipped to the triggering page" [ 3584 ]
    (Hw.observe_miss t ~pc ~addr:3072);
  (* Negative strides clip at address zero (page 0's lower edge). *)
  let t = rpt ~degree:1 ~distance:4 () in
  let pc = 1 in
  train t ~pc ~start:192 ~stride:(-64);
  check_targets "negative stride clips below zero" []
    (Hw.observe_miss t ~pc ~addr:128)

let test_aliasing_eviction () =
  (* Direct-mapped table of 4: pcs 3 and 7 collide on slot 3, and a miss
     from the aliasing pc evicts the trained tracker (tag replacement),
     losing its Steady state. *)
  let t = rpt ~table:4 () in
  train t ~pc:3 ~start:0 ~stride:64;
  check_targets "trained tracker prefetches" [ 384 ]
    (Hw.observe_miss t ~pc:3 ~addr:128);
  check_targets "aliasing pc evicts, no prefetch" []
    (Hw.observe_miss t ~pc:7 ~addr:8192);
  Alcotest.(check (option string))
    "evicted tracker no longer tagged" None
    (Hw.rpt_state_name t ~pc:3);
  check_state "usurper starts Initial" "initial" (state t 7);
  check_targets "evicted pc restarts cold" []
    (Hw.observe_miss t ~pc:3 ~addr:192)

let test_reset_determinism () =
  (* The same miss sequence must produce the same suggestion sequence
     before and after a reset — GC compaction relies on reset restoring
     the power-on state exactly. *)
  let t = rpt ~table:8 ~degree:2 ~distance:3 () in
  let misses =
    [ (1, 0); (1, 64); (1, 128); (2, 4096); (9, 8192); (1, 192); (2, 4160) ]
  in
  let feed () =
    List.map (fun (pc, addr) -> Hw.observe_miss t ~pc ~addr) misses
  in
  let first = feed () in
  Hw.reset t;
  Alcotest.(check (option string))
    "reset clears the tags" None
    (Hw.rpt_state_name t ~pc:1);
  let second = feed () in
  Alcotest.(check (list (list int)))
    "replay after reset is bit-identical" first second

(* ---- co-simulation golden laws (hierarchy level) ---- *)

let stride_workload =
  {
    W.name = "hwpf-fixture";
    suite = `Specjvm;
    description = "strided field walk (hw-prefetch test fixture)";
    paper_note = "";
    heap_limit_bytes = 8 * 1024 * 1024;
    source =
      {|
class Node { int v; Node(int x) { v = x; } }
class T {
  static int walk(Node[] ns) {
    int acc = 0;
    for (int i = 0; i < ns.length; i = i + 1) { acc = acc + ns[i].v; }
    return acc;
  }
  static void main() {
    Node[] ns = new Node[4000];
    for (int i = 0; i < 4000; i = i + 1) { ns[i] = new Node(i); }
    int acc = 0;
    for (int r = 0; r < 6; r = r + 1) { acc = (acc + T.walk(ns)) % 9973; }
    print(acc);
  }
}
|};
  }

let with_hw hw = { C.pentium4 with C.hw_prefetch = hw }

let check_same_run label (a : H.run_result) (b : H.run_result) =
  Alcotest.(check string) (label ^ ": output") a.output b.output;
  Alcotest.(check int) (label ^ ": cycles") a.cycles b.cycles;
  List.iter2
    (fun (k, va) (k', vb) ->
      Alcotest.(check string) (label ^ ": counter name") k k';
      Alcotest.(check int) (label ^ ": " ^ k) va vb)
    (Memsim.Stats.core_alist a.stats)
    (Memsim.Stats.core_alist b.stats)

let test_none_equals_zero_streams () =
  (* hw=none and a zero-stream unit must be the same machine, bit for
     bit: Hw_stream {streams=0} collapses to Disabled at creation. *)
  let run hw =
    H.run ~mode:Strideprefetch.Options.Inter_intra ~machine:(with_hw hw)
      stride_workload
  in
  check_same_run "none vs stream:0" (run C.Hw_none)
    (run (C.Hw_stream { streams = 0 }))

let test_rpt_engine_invariance () =
  (* The RPT is indexed by the packed pc of the missing instruction, and
     the two engines compute that pc differently (runtime frame.pc vs
     compile-time constant): if they ever disagree, RPT lookups diverge
     and so do cycle counts. This is the sharpest consumer of the
     engines' bit-identity contract. *)
  let run engine =
    H.run ~engine ~mode:Strideprefetch.Options.Inter_intra
      ~machine:(with_hw C.default_rpt) stride_workload
  in
  check_same_run "switch vs closure under rpt" (run Vm.Interp.Switch)
    (run Vm.Interp.Closure)

let test_hw_models_move_cycles_only () =
  (* The three models must agree on program output (the architectural
     surface) while being free to move cycles. *)
  let run hw =
    H.run ~mode:Strideprefetch.Options.Inter_intra ~machine:(with_hw hw)
      stride_workload
  in
  let none = run C.Hw_none in
  let stream = run C.default_stream in
  let rpt = run C.default_rpt in
  Alcotest.(check string) "stream output" none.output stream.output;
  Alcotest.(check string) "rpt output" none.output rpt.output;
  Alcotest.(check bool) "rpt actually prefetches" true
    Memsim.Stats.(rpt.H.stats.hw_prefetches > 0)

let suite =
  [
    ("rpt: state machine transitions", `Quick, test_state_machine);
    ("rpt: degree and distance geometry", `Quick, test_degree_and_distance);
    ("rpt: page clipping", `Quick, test_page_clipping);
    ("rpt: direct-mapped aliasing eviction", `Quick, test_aliasing_eviction);
    ("rpt: reset determinism", `Quick, test_reset_determinism);
    ("cosim: hw=none == stream:0 (bit-identical)", `Quick,
     test_none_equals_zero_streams);
    ("cosim: rpt pc indexing is engine-invariant", `Quick,
     test_rpt_engine_invariance);
    ("cosim: models move cycles only", `Quick,
     test_hw_models_move_cycles_only);
  ]
