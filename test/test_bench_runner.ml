(* Tests for the parallel bench-matrix runner (bench/runner.ml) and for the
   hot-path overhaul's core invariant: simulated cycle counts are a pure
   function of the (workload, machine, mode) cell — independent of the
   Domain pool size, and bit-identical to the values recorded from the
   pre-overhaul simulator. *)

module R = Bench_runner.Runner
module W = Workloads.Workload
module H = Workloads.Harness
module SP = Strideprefetch
module S = Memsim.Stats

let small_chase =
  {
    W.name = "tiny-chase";
    suite = `Specjvm;
    description = "runner test fixture: pointer chase";
    paper_note = "";
    heap_limit_bytes = 4 * 1024 * 1024;
    source =
      {|
class Node { int v; Node next; Node(int x) { v = x; next = null; } }
class T {
  static void main() {
    Node head = new Node(0);
    Node cur = head;
    for (int i = 1; i < 400; i = i + 1) {
      cur.next = new Node(i);
      cur = cur.next;
    }
    int acc = 0;
    for (int r = 0; r < 6; r = r + 1) {
      Node p = head;
      while (p != null) { acc = (acc + p.v) % 9973; p = p.next; }
    }
    print(acc);
  }
}
|};
  }

let small_walk =
  {
    W.name = "tiny-walk";
    suite = `Javagrande;
    description = "runner test fixture: array walk";
    paper_note = "";
    heap_limit_bytes = 4 * 1024 * 1024;
    source =
      {|
class Cell { int v; Cell(int x) { v = x; } }
class T {
  static void main() {
    Cell[] cs = new Cell[600];
    for (int i = 0; i < 600; i = i + 1) { cs[i] = new Cell(i * 3); }
    int acc = 0;
    for (int r = 0; r < 5; r = r + 1) {
      for (int i = 0; i < 600; i = i + 1) { acc = (acc + cs[i].v) % 7919; }
    }
    print(acc);
  }
}
|};
  }

(* All seventeen counters, in the canonical mli order, so two stats blocks
   can be compared field-for-field in one list equality. *)
let stats_fields (s : S.t) =
  [
    s.loads; s.stores; s.l1_load_misses; s.l1_store_misses; s.l2_load_misses;
    s.l2_store_misses; s.dtlb_load_misses; s.dtlb_store_misses;
    s.in_flight_hits; s.sw_prefetches; s.sw_prefetches_cancelled;
    s.sw_prefetch_useless; s.guarded_loads; s.hw_prefetches;
    s.retired_instructions; s.cycles; s.stall_cycles;
  ]

let test_cells () =
  let p4 = Memsim.Config.pentium4 and amp = Memsim.Config.athlon_mp in
  [
    R.cell small_chase p4 SP.Options.Off;
    R.cell small_chase p4 SP.Options.Inter_intra;
    R.cell small_walk amp SP.Options.Off;
    R.cell small_walk amp SP.Options.Inter_intra;
    R.cell
      ~opts:{ SP.Options.default with SP.Options.scheduling_distance = 2 }
      small_chase p4 SP.Options.Inter;
  ]

let test_parallel_matches_serial () =
  let cells = test_cells () in
  let serial = R.run_matrix ~jobs:1 cells in
  let parallel = R.run_matrix ~jobs:2 cells in
  Alcotest.(check int) "cell count" (List.length serial)
    (List.length parallel);
  List.iter2
    (fun (a : R.timed) (b : R.timed) ->
      let label = R.cell_label a.cell in
      Alcotest.(check string) (label ^ ": input order preserved") label
        (R.cell_label b.cell);
      Alcotest.(check int)
        (label ^ ": cycles identical")
        a.result.H.cycles b.result.H.cycles;
      Alcotest.(check string)
        (label ^ ": output identical")
        a.result.H.output b.result.H.output;
      Alcotest.(check (list int))
        (label ^ ": all stats counters identical")
        (stats_fields a.result.H.stats)
        (stats_fields b.result.H.stats))
    serial parallel

let test_progress_and_clamping () =
  let cells = [ R.cell small_walk Memsim.Config.pentium4 SP.Options.Off ] in
  let seen = ref 0 in
  (* jobs beyond the cell count must clamp, not spawn idle domains *)
  let r = R.run_matrix ~progress:(fun _ -> incr seen) ~jobs:64 cells in
  Alcotest.(check int) "one result" 1 (List.length r);
  Alcotest.(check int) "progress called once per cell" 1 !seen;
  List.iter
    (fun (t : R.timed) ->
      Alcotest.(check bool) "wall clock recorded" true (t.R.seconds >= 0.0))
    r

(* ------------------------------------------------------------------ *)
(* Golden values recorded from the pre-overhaul simulator (seed commit
   b6c483d) with scratch/golden.ml. The hot-path overhaul (dense heap,
   memsim fast path, frame pooling) must not change a single counter. *)

let all = Workloads.Specjvm.all @ Workloads.Javagrande.all
let find n = List.find (fun (w : W.t) -> w.name = n) all

let check_golden ~name ~machine ~mode golden =
  let r = H.run ~mode ~machine (find name) in
  let label =
    Printf.sprintf "%s/%s/%s" name machine.Memsim.Config.name
      (SP.Options.mode_name mode)
  in
  Alcotest.(check (list int))
    (label ^ ": bit-identical to seed simulator")
    golden
    (stats_fields r.H.stats);
  Alcotest.(check int) (label ^ ": run_result.cycles = stats.cycles")
    r.H.stats.S.cycles r.H.cycles

(* Field order: loads stores l1lm l1sm l2lm l2sm tlblm tlbsm inflight swpf
   cancel useless guarded hwpf retired cycles stall. *)
let test_golden_db () =
  check_golden ~name:"db" ~machine:Memsim.Config.pentium4 ~mode:SP.Options.Off
    [
      6042584; 226183; 353603; 12202; 172605; 4132; 99859; 192; 0; 0; 0; 0; 0;
      47601; 25052049; 51328875; 23166762;
    ];
  check_golden ~name:"db" ~machine:Memsim.Config.pentium4
    ~mode:SP.Options.Inter_intra
    [
      6042584; 226183; 212028; 12204; 62545; 4132; 7191; 192; 5717; 175658;
      94027; 257973; 351346; 2939; 25579113; 42043819; 12651890;
    ];
  check_golden ~name:"db" ~machine:Memsim.Config.athlon_mp
    ~mode:SP.Options.Inter_intra
    [
      6042584; 226183; 65850; 12205; 55216; 8263; 25; 191; 0; 526974; 0;
      470365; 175688; 5732; 25754801; 38892268; 9676027;
    ]

let test_golden_search () =
  check_golden ~name:"Search" ~machine:Memsim.Config.pentium4
    ~mode:SP.Options.Inter_intra
    [
      6176449; 119519; 0; 4; 0; 2; 0; 1; 0; 0; 0; 0; 0; 1; 47031143;
      53346223; 6296154;
    ];
  check_golden ~name:"Search" ~machine:Memsim.Config.athlon_mp
    ~mode:SP.Options.Off
    [
      6176449; 119519; 0; 4; 0; 3; 0; 1; 0; 0; 0; 0; 0; 1; 47031143;
      53346220; 6296151;
    ]

let suite =
  [
    ("2-domain matrix byte-identical to serial", `Quick,
     test_parallel_matches_serial);
    ("progress callback + jobs clamping", `Quick, test_progress_and_clamping);
    ("golden seed counters: db (3 cells)", `Slow, test_golden_db);
    ("golden seed counters: Search (2 cells)", `Slow, test_golden_search);
  ]
