(* Tests for the object-centric profiler (lib/profile): the conservation
   law over a (machine x mode) matrix, observer-effect freedom (a
   profiled run is bit-identical to a plain one), sane bin and
   allocation-site attribution, and byte-identical determinism of the
   folded-stack / JSON exports — across repeated runs and across Domain
   pool sizes. *)

module H = Workloads.Harness
module W = Workloads.Workload
module SP = Strideprefetch
module R = Bench_runner.Runner

let chase =
  {
    W.name = "prof-chase";
    suite = `Specjvm;
    description = "profiler test fixture: pointer chase";
    paper_note = "";
    heap_limit_bytes = 4 * 1024 * 1024;
    source =
      {|
class Node {
  int v; int p1; int p2; int p3; int p4; int p5; int p6; int p7; int p8;
  int q1; int q2; int q3; int q4; int q5; int q6; int q7; int q8;
  Node next;
  Node(int x) { v = x; next = null; }
}
class Walker {
  int sweep(Node head) {
    int acc = 0;
    Node p = head;
    while (p != null) { acc = (acc + p.v) % 9973; p = p.next; }
    return acc;
  }
}
class T {
  static void main() {
    Node head = new Node(0);
    Node cur = head;
    for (int i = 1; i < 400; i = i + 1) {
      cur.next = new Node(i);
      cur = cur.next;
    }
    Walker w = new Walker();
    int acc = 0;
    for (int r = 0; r < 8; r = r + 1) { acc = w.sweep(head); }
    print(acc);
  }
}
|};
  }

let machines = [ Memsim.Config.pentium4; Memsim.Config.athlon_mp ]
let modes = [ SP.Options.Off; SP.Options.Inter; SP.Options.Inter_intra ]

let profiled ?(machine = Memsim.Config.pentium4)
    ?(mode = SP.Options.Inter_intra) ?opts w =
  H.run ?opts ~profile:true ~mode ~machine w

let report r = Option.get r.H.profile

(* Every cell of the little matrix must bin every cycle exactly once. *)
let test_conservation_matrix () =
  List.iter
    (fun machine ->
      List.iter
        (fun mode ->
          let r = profiled ~machine ~mode chase in
          let rep = report r in
          Alcotest.(check (option string))
            (Printf.sprintf "conservation %s/%s"
               machine.Memsim.Config.name (SP.Options.mode_name mode))
            None
            (Profile.Report.conservation_error rep);
          Alcotest.(check int)
            "report cycles = run cycles" r.H.cycles rep.Profile.Report.cycles)
        modes)
    machines

(* The profiler observes; it must not participate. *)
let test_observer_effect () =
  let plain = H.run ~mode:SP.Options.Inter_intra ~machine:Memsim.Config.pentium4 chase in
  let prof = profiled chase in
  Alcotest.(check string) "output" plain.H.output prof.H.output;
  Alcotest.(check int) "cycles" plain.H.cycles prof.H.cycles;
  List.iter2
    (fun (k, a) (k', b) ->
      Alcotest.(check string) "counter name" k k';
      Alcotest.(check int) ("core counter " ^ k) a b)
    (Memsim.Stats.core_alist plain.H.stats)
    (Memsim.Stats.core_alist prof.H.stats)

let test_bins_sane () =
  let r = profiled chase in
  let rep = report r in
  let t = rep.Profile.Report.totals in
  Alcotest.(check bool) "retire cycles recorded" true (t.Profile.Collector.b_retire > 0);
  Alcotest.(check bool) "alloc cycles recorded" true (t.Profile.Collector.b_alloc > 0);
  Alcotest.(check bool)
    "some memory stall recorded" true
    (t.Profile.Collector.b_l1 + t.Profile.Collector.b_l2
     + t.Profile.Collector.b_mem + t.Profile.Collector.b_tlb
    > 0);
  Alcotest.(check int) "totals + gc = cycles" rep.Profile.Report.cycles
    (Profile.Collector.bins_total t + rep.Profile.Report.gc_cycles);
  (* Hot rows exist, and each row's bins sum to its own total. *)
  Alcotest.(check bool) "pc rows nonempty" true (rep.Profile.Report.pcs <> []);
  List.iter
    (fun (row : Profile.Report.pc_row) ->
      Alcotest.(check int) "row total" row.row_total
        (Profile.Collector.bins_total row.bins))
    rep.Profile.Report.pcs

(* Object-centric attribution: the chase allocates 400 Nodes inside
   T.main and then stalls on them; the allocation sites must be
   attributed to T.main with the right object count. *)
let test_objects_attributed () =
  let r = profiled chase in
  let rep = report r in
  let main_rows =
    List.filter
      (fun (o : Profile.Report.obj_row) -> o.alloc_method = "T.main")
      rep.Profile.Report.objects
  in
  Alcotest.(check bool) "T.main allocation sites present" true
    (main_rows <> []);
  let allocs =
    List.fold_left
      (fun acc (o : Profile.Report.obj_row) -> acc + o.allocs)
      0 main_rows
  in
  (* 400 Nodes + 1 Walker, all allocated by T.main. *)
  Alcotest.(check int) "T.main's allocations attributed" 401 allocs;
  let stalls =
    List.fold_left
      (fun acc (o : Profile.Report.obj_row) -> acc + o.o_total)
      0 main_rows
  in
  Alcotest.(check bool) "chasing those Nodes stalled" true (stalls > 0)

(* The prefetching modes must show their overhead in the pf bin. *)
let test_pf_overhead_bin () =
  let off = report (profiled ~mode:SP.Options.Off chase) in
  let on = report (profiled ~mode:SP.Options.Inter_intra chase) in
  Alcotest.(check int)
    "no prefetch overhead at mode Off" 0
    off.Profile.Report.totals.Profile.Collector.b_pf;
  Alcotest.(check bool)
    "prefetch overhead appears at inter+intra" true
    (on.Profile.Report.totals.Profile.Collector.b_pf > 0)

(* check_invariants promotes the conservation laws to runtime asserts;
   a healthy run must pass through them silently. *)
let test_invariant_gate () =
  let opts = { SP.Options.default with SP.Options.check_invariants = true } in
  let r = profiled ~opts chase in
  Alcotest.(check bool) "run completed" true (String.length r.H.output > 0)

(* Byte determinism: same cell, two fresh runs, identical exports. *)
let test_determinism_two_runs () =
  let a = report (profiled chase) and b = report (profiled chase) in
  Alcotest.(check string) "folded stacks byte-identical"
    (Profile.Report.folded a) (Profile.Report.folded b);
  Alcotest.(check string) "JSON byte-identical"
    (Telemetry.Json.to_string (Profile.Report.to_json a))
    (Telemetry.Json.to_string (Profile.Report.to_json b))

(* ...and across Domain pool sizes: the profiled cells of a parallel
   matrix are byte-identical to the serial ones. *)
let test_determinism_jobs () =
  let cells =
    [
      R.cell ~profile:true chase Memsim.Config.pentium4 SP.Options.Inter_intra;
      R.cell ~profile:true chase Memsim.Config.athlon_mp SP.Options.Inter;
    ]
  in
  let exports timed =
    List.map
      (fun (t : R.timed) ->
        let rep = Option.get t.result.H.profile in
        ( Profile.Report.folded rep,
          Telemetry.Json.to_string (Profile.Report.to_json rep) ))
      timed
  in
  let serial = exports (R.run_matrix ~jobs:1 cells)
  and parallel = exports (R.run_matrix ~jobs:2 cells) in
  List.iter2
    (fun (fa, ja) (fb, jb) ->
      Alcotest.(check string) "folded: jobs 1 = jobs 2" fa fb;
      Alcotest.(check string) "json: jobs 1 = jobs 2" ja jb)
    serial parallel

(* The folded export is well-formed flamegraph.pl input. *)
let test_folded_format () =
  let rep = report (profiled chase) in
  let folded = Profile.Report.folded rep in
  Alcotest.(check bool) "non-empty" true (String.length folded > 0);
  Alcotest.(check bool) "ends with newline" true
    (folded.[String.length folded - 1] = '\n');
  String.split_on_char '\n' folded
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match String.rindex_opt line ' ' with
         | None -> Alcotest.failf "no count field: %S" line
         | Some i -> (
             let count = String.sub line (i + 1) (String.length line - i - 1) in
             match int_of_string_opt count with
             | Some n when n > 0 -> ()
             | _ -> Alcotest.failf "bad count in %S" line))

let suite =
  [
    Alcotest.test_case "conservation law across machine x mode" `Slow
      test_conservation_matrix;
    Alcotest.test_case "profiling is observer-only" `Slow test_observer_effect;
    Alcotest.test_case "bins are sane and self-consistent" `Quick
      test_bins_sane;
    Alcotest.test_case "object-centric allocation-site attribution" `Quick
      test_objects_attributed;
    Alcotest.test_case "prefetch overhead lands in the pf bin" `Quick
      test_pf_overhead_bin;
    Alcotest.test_case "check-invariants gate passes on a healthy run" `Quick
      test_invariant_gate;
    Alcotest.test_case "exports byte-identical across runs" `Quick
      test_determinism_two_runs;
    Alcotest.test_case "exports byte-identical across Domain pools" `Slow
      test_determinism_jobs;
    Alcotest.test_case "folded stacks are well-formed" `Quick
      test_folded_format;
  ]
