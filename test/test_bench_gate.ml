(* Tests for the statistical bench-regression gate (bench/gate.ml):
   report round-tripping through the shared v2 writer, exact-cycle
   gating, schema refusal, bootstrap determinism, and the
   practical-significance threshold on wall-clock. *)

module R = Bench_runner.Runner
module Report = Bench_runner.Report
module Gate = Bench_runner.Gate
module W = Workloads.Workload
module SP = Strideprefetch

let fixture =
  {
    W.name = "gate-walk";
    suite = `Javagrande;
    description = "gate test fixture: array walk";
    paper_note = "";
    heap_limit_bytes = 4 * 1024 * 1024;
    source =
      {|
class Cell { int v; Cell(int x) { v = x; } }
class T {
  static void main() {
    Cell[] cs = new Cell[600];
    for (int i = 0; i < 600; i = i + 1) { cs[i] = new Cell(i * 3); }
    int acc = 0;
    for (int r = 0; r < 5; r = r + 1) {
      for (int i = 0; i < 600; i = i + 1) { acc = (acc + cs[i].v) % 7919; }
    }
    print(acc);
  }
}
|};
  }

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

(* One real timed cell, rendered and parsed back through the shared
   writer — the recorder and the gate agree on the format. *)
let record () =
  let timed =
    [
      R.run_cell (R.cell fixture Memsim.Config.pentium4 SP.Options.Inter_intra);
      R.run_cell
        (R.cell ~profile:true fixture Memsim.Config.pentium4
           SP.Options.Inter_intra);
    ]
  in
  ok
    (Gate.of_string ~label:"test"
       (Report.to_json_string ~jobs:1 ~matrix_wall_seconds:0.0 timed))

let test_roundtrip () =
  let run = record () in
  Alcotest.(check string) "schema" Report.schema run.Gate.schema;
  Alcotest.(check int) "two cells" 2 (List.length run.Gate.cells);
  let plain, prof =
    match run.Gate.cells with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  Alcotest.(check bool) "plain cell not profiled" false plain.Gate.profile;
  Alcotest.(check bool) "profiled cell flagged" true prof.Gate.profile;
  Alcotest.(check bool) "distinct keys" true
    (Gate.cell_key plain <> Gate.cell_key prof);
  Alcotest.(check int) "cycles agree across the observer" plain.Gate.cycles
    prof.Gate.cycles;
  Alcotest.(check bool) "cycles recorded" true (plain.Gate.cycles > 0)

let test_same_run_passes () =
  let a = record () and b = record () in
  (* A huge threshold removes single-cell wall-clock noise: this asserts
     the cycle law, which must hold exactly. *)
  let c = ok (Gate.compare_runs ~threshold:10.0 ~a ~b ()) in
  Alcotest.(check bool) "gate passes" true (Gate.passes c);
  Alcotest.(check int) "no cycle regressions" 0
    (List.length c.Gate.cycle_regressions);
  Alcotest.(check int) "no cycle improvements" 0
    (List.length c.Gate.cycle_improvements);
  Alcotest.(check int) "both cells matched" 2 (List.length c.Gate.pairs);
  Alcotest.(check int) "exit code 0" 0 (Gate.gate_exit c)

let bump_cycles pct (run : Gate.run) =
  {
    run with
    Gate.cells =
      List.map
        (fun (r : Gate.cell_rec) ->
          { r with Gate.cycles = r.cycles + (r.cycles * pct / 100) })
        run.Gate.cells;
  }

let test_injected_regression_fails () =
  let a = record () in
  let b = bump_cycles 10 a in
  let c = ok (Gate.compare_runs ~threshold:10.0 ~a ~b ()) in
  Alcotest.(check bool) "gate fails" false (Gate.passes c);
  Alcotest.(check int) "every cell regressed" 2
    (List.length c.Gate.cycle_regressions);
  Alcotest.(check int) "exit code 1" 1 (Gate.gate_exit c);
  (* ...and a cycle improvement alone must NOT fail the gate. *)
  let c' = ok (Gate.compare_runs ~threshold:10.0 ~a:b ~b:a ()) in
  Alcotest.(check bool) "improvement passes" true (Gate.passes c');
  Alcotest.(check int) "reported as improvements" 2
    (List.length c'.Gate.cycle_improvements)

let test_schema_refusal () =
  let a = record () in
  let v1 = { a with Gate.schema = "bench_hotpath/v1" } in
  (match Gate.compare_runs ~a:v1 ~b:a () with
  | Ok _ -> Alcotest.fail "v1 baseline accepted"
  | Error e ->
      Alcotest.(check bool) "names the old schema" true
        (contains ~affix:"bench_hotpath/v1" e);
      Alcotest.(check bool) "names the expected schema" true
        (contains ~affix:Report.schema e));
  match Gate.compare_runs ~a ~b:v1 () with
  | Ok _ -> Alcotest.fail "v1 candidate accepted"
  | Error _ -> ()

(* Synthetic runs let us pin the statistics without wall-clock noise. *)
let synth_run ?(schema = Report.schema) cells =
  {
    Gate.schema;
    jobs = 1;
    host_cpus = 1;
    cells =
      List.mapi
        (fun i (seconds, cycles) ->
          {
            Gate.workload = Printf.sprintf "w%d" i;
            machine = "Pentium4";
            mode = "INTER+INTRA";
            engine = "closure";
            telemetry = false;
            profile = false;
            monitor = false;
            hw = Gate.default_hw;
            sw_threshold = None;
            prediction = None;
            blame = None;
            seconds;
            cycles;
          })
        cells;
  }

let test_wallclock_significance () =
  let base = List.init 8 (fun i -> (1.0 +. (0.01 *. float_of_int i), 1000)) in
  let a = synth_run base in
  (* Uniform 2x slowdown: the whole CI sits above +5%. *)
  let slow = synth_run (List.map (fun (s, c) -> (s *. 2.0, c)) base) in
  let c = ok (Gate.compare_runs ~a ~b:slow ()) in
  Alcotest.(check bool) "2x slowdown is significant" true
    c.Gate.significant_slowdown;
  Alcotest.(check bool) "gate fails on wall-clock alone" false (Gate.passes c);
  (* Uniform +1%: inside the practical threshold, must pass. *)
  let near = synth_run (List.map (fun (s, c) -> (s *. 1.01, c)) base) in
  let c' = ok (Gate.compare_runs ~a ~b:near ()) in
  Alcotest.(check bool) "+1% is not significant" false
    c'.Gate.significant_slowdown;
  Alcotest.(check bool) "gate passes" true (Gate.passes c')

let test_bootstrap_deterministic () =
  let a =
    synth_run (List.init 10 (fun i -> (1.0 +. (0.05 *. float_of_int i), 500)))
  in
  let b =
    synth_run
      (List.init 10 (fun i -> (1.1 +. (0.04 *. float_of_int (10 - i)), 500)))
  in
  let c1 = ok (Gate.compare_runs ~a ~b ())
  and c2 = ok (Gate.compare_runs ~a ~b ()) in
  Alcotest.(check (float 0.0)) "ci_low deterministic" c1.Gate.ci_low
    c2.Gate.ci_low;
  Alcotest.(check (float 0.0)) "ci_high deterministic" c1.Gate.ci_high
    c2.Gate.ci_high;
  Alcotest.(check string) "render byte-identical" (Gate.render c1)
    (Gate.render c2);
  Alcotest.(check bool) "CI brackets the geomean" true
    (c1.Gate.ci_low <= c1.Gate.seconds_geomean
    && c1.Gate.seconds_geomean <= c1.Gate.ci_high)

let test_unmatched_cells () =
  let a = synth_run [ (1.0, 100); (2.0, 200); (3.0, 300) ] in
  let b =
    {
      a with
      Gate.cells =
        List.filter (fun (c : Gate.cell_rec) -> c.workload <> "w2") a.Gate.cells;
    }
  in
  let c = ok (Gate.compare_runs ~a ~b ()) in
  Alcotest.(check int) "two cells matched" 2 (List.length c.Gate.pairs);
  Alcotest.(check int) "one cell only in A" 1 (List.length c.Gate.only_a);
  Alcotest.(check int) "none only in B" 0 (List.length c.Gate.only_b);
  Alcotest.(check bool) "still passes" true (Gate.passes c)

let test_bad_reports () =
  (match Gate.of_string ~label:"x" "not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  (match Gate.of_string ~label:"x" "{\"cells\": []}" with
  | Ok _ -> Alcotest.fail "schema-less report accepted"
  | Error _ -> ());
  match
    Gate.of_string ~label:"x"
      "{\"schema\": \"bench_hotpath/v2\", \"cells\": [{\"workload\": \"w\"}]}"
  with
  | Ok _ -> Alcotest.fail "cell without cycles accepted"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "report round-trips through the shared writer" `Slow
      test_roundtrip;
    Alcotest.test_case "same tree re-run gates clean" `Slow
      test_same_run_passes;
    Alcotest.test_case "injected +10% cycles fails the gate" `Slow
      test_injected_regression_fails;
    Alcotest.test_case "cross-schema compares are refused" `Slow
      test_schema_refusal;
    Alcotest.test_case "wall-clock significance thresholding" `Quick
      test_wallclock_significance;
    Alcotest.test_case "bootstrap CI is deterministic" `Quick
      test_bootstrap_deterministic;
    Alcotest.test_case "unmatched cells are reported, not fatal" `Quick
      test_unmatched_cells;
    Alcotest.test_case "ill-formed reports are rejected" `Quick
      test_bad_reports;
  ]
