let () =
  Alcotest.run "strideprefetch"
    [
      ("memsim", Test_memsim.suite);
      ("hw-prefetch", Test_hw_prefetch.suite);
      ("vm", Test_vm.suite);
      ("engine", Test_engine.suite);
      ("jit", Test_jit.suite);
      ("minijava", Test_minijava.suite);
      ("strideprefetch", Test_strideprefetch.suite);
      ("workloads", Test_workloads.suite);
      ("heap-dense", Test_heap_dense.suite);
      ("bench-runner", Test_bench_runner.suite);
      ("fuzz", Test_fuzz.suite);
      ("analysis", Test_analysis.suite);
      ("telemetry", Test_telemetry.suite);
      ("profile", Test_profile.suite);
      ("bench-gate", Test_bench_gate.suite);
      ("monitor", Test_monitor.suite);
      ("diff", Test_diff.suite);
    ]
