(* Tests for the differential fuzzing subsystem (lib/fuzz): generator
   determinism and well-typedness, pretty-printer round-trips, the
   oracle's clean pass on a fixed seed range, and — the oracle's own
   acceptance test — that an intentionally injected miscompile is caught
   and shrunk to a small reproducer. *)

let fixed_seeds = List.init 40 (fun i -> i + 1)

let test_generator_deterministic () =
  List.iter
    (fun seed ->
      let a = Fuzz.Gen.generate ~seed ~max_size:8 in
      let b = Fuzz.Gen.generate ~seed ~max_size:8 in
      Alcotest.(check string)
        (Printf.sprintf "seed %d reproduces" seed)
        (Fuzz.Gen.source a) (Fuzz.Gen.source b);
      Alcotest.(check int)
        (Printf.sprintf "seed %d heap limit reproduces" seed)
        a.Fuzz.Gen.heap_limit_bytes b.Fuzz.Gen.heap_limit_bytes)
    [ 1; 17; 9999; 123456789 ]

let test_generator_varies () =
  let sources =
    List.map
      (fun seed -> Fuzz.Gen.source (Fuzz.Gen.generate ~seed ~max_size:8))
      fixed_seeds
  in
  let distinct = List.sort_uniq compare sources in
  Alcotest.(check bool)
    "at least half the seeds give distinct programs" true
    (List.length distinct * 2 >= List.length sources)

let test_generated_programs_compile () =
  (* well-typed by construction, witnessed through the real front end *)
  List.iter
    (fun seed ->
      let g = Fuzz.Gen.generate ~seed ~max_size:8 in
      match Minijava.Compile.program_of_source (Fuzz.Gen.source g) with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "seed %d does not compile: %s" seed
            (Minijava.Compile.string_of_error e))
    fixed_seeds

let test_pretty_round_trip () =
  (* parse (pretty ast) pretty-prints identically: the printer emits
     exactly the language the parser reads *)
  List.iter
    (fun seed ->
      let g = Fuzz.Gen.generate ~seed ~max_size:8 in
      let once = Fuzz.Gen.source g in
      let again = Minijava.Pretty.program (Minijava.Parser.parse_string once) in
      Alcotest.(check string)
        (Printf.sprintf "seed %d round-trips" seed)
        once again)
    fixed_seeds

let test_oracle_accepts_clean_programs () =
  let campaign =
    Fuzz.Driver.run ~shrink:false ~campaign_seed:301 ~count:8 ~max_size:6 ()
  in
  (match campaign.Fuzz.Driver.findings with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "unexpected finding at seed %d: %s" f.Fuzz.Driver.seed
        (Fuzz.Oracle.describe f.Fuzz.Driver.failure));
  Alcotest.(check int) "all programs ran" 8 campaign.Fuzz.Driver.programs_run;
  (* 12 matrix cells + the telemetry/profile pair + the engine pair +
     the hardware-model triple + the prediction-tier triple. *)
  Alcotest.(check int) "full matrix" 22 campaign.Fuzz.Driver.cells_per_program

let unguarded (o : Vm.Interp.options) =
  { o with Vm.Interp.unguarded_spec_loads = true }

(* Seed 111 generates an array walk whose q.next.v chain gets a spec_load
   whose guard trips near the heap frontier — the canonical victim for the
   unguarded-spec-load fault injection. *)
let injection_seed = 111

let test_injected_fault_is_caught_and_shrunk () =
  let campaign =
    Fuzz.Driver.run ~tweak_options:unguarded ~campaign_seed:injection_seed
      ~count:1 ~max_size:8 ()
  in
  match campaign.Fuzz.Driver.findings with
  | [ f ] -> (
      (match f.Fuzz.Driver.failure with
      | Fuzz.Oracle.Crash _ -> ()
      | other ->
          Alcotest.failf "expected a crash finding, got: %s"
            (Fuzz.Oracle.describe other));
      match f.Fuzz.Driver.shrunk with
      | None -> Alcotest.fail "finding was not shrunk"
      | Some s ->
          let lines =
            List.length (String.split_on_char '\n' s.Fuzz.Shrink.source)
          in
          Alcotest.(check bool)
            (Printf.sprintf "reproducer is small (%d lines)" lines)
            true (lines < 30);
          Alcotest.(check bool) "shrinking made progress" true
            (String.length s.Fuzz.Shrink.source < String.length f.Fuzz.Driver.source);
          (* the minimized program still compiles and still fails the
             oracle in the same way *)
          (match
             Minijava.Compile.program_of_source s.Fuzz.Shrink.source
           with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "shrunk reproducer does not compile: %s"
                (Minijava.Compile.string_of_error e));
          let g = Fuzz.Gen.generate ~seed:injection_seed ~max_size:8 in
          (match
             Fuzz.Oracle.check ~tweak_options:unguarded
               ~source:s.Fuzz.Shrink.source
               ~heap_limit_bytes:g.Fuzz.Gen.heap_limit_bytes ()
           with
          | Fuzz.Oracle.Fail (Fuzz.Oracle.Crash _) -> ()
          | Fuzz.Oracle.Fail other ->
              Alcotest.failf "shrunk reproducer fails differently: %s"
                (Fuzz.Oracle.describe other)
          | Fuzz.Oracle.Pass _ ->
              Alcotest.fail "shrunk reproducer no longer fails"))
  | l -> Alcotest.failf "expected exactly 1 finding, got %d" (List.length l)

let test_injection_seed_is_clean_without_fault () =
  (* the same program passes the oracle when the guard is left on: the
     failure really is the injected fault, not the program *)
  let _, verdict =
    Fuzz.Driver.check_seed ~seed:injection_seed ~max_size:8 ()
  in
  match verdict with
  | Fuzz.Oracle.Pass _ -> ()
  | Fuzz.Oracle.Fail f ->
      Alcotest.failf "seed %d should pass cleanly: %s" injection_seed
        (Fuzz.Oracle.describe f)

let test_replay_protocol () =
  (* a finding at campaign program [i] carries derived seed
     campaign_seed + i, and regenerating from that seed alone reproduces
     the exact failing program — the published replay protocol *)
  let campaign_seed = injection_seed - 2 in
  let campaign =
    Fuzz.Driver.run ~tweak_options:unguarded ~shrink:false ~campaign_seed
      ~count:3 ~max_size:8 ()
  in
  Alcotest.(check bool) "the injected fault produced a finding" true
    (campaign.Fuzz.Driver.findings <> []);
  List.iter
    (fun (f : Fuzz.Driver.finding) ->
      Alcotest.(check int) "derived seed = campaign + index"
        (campaign_seed + f.Fuzz.Driver.index)
        f.Fuzz.Driver.seed;
      let g = Fuzz.Gen.generate ~seed:f.Fuzz.Driver.seed ~max_size:8 in
      Alcotest.(check string) "replay reproduces the program"
        f.Fuzz.Driver.source (Fuzz.Gen.source g))
    campaign.Fuzz.Driver.findings

let test_shrink_terminates_and_decreases () =
  (* with an always-failing predicate the shrinker drives any program to a
     local minimum without looping: every accepted step strictly
     decreases the measure *)
  let g = Fuzz.Gen.generate ~seed:42 ~max_size:6 in
  let r = Fuzz.Shrink.run ~is_failing:(fun _ -> true) g.Fuzz.Gen.program in
  Alcotest.(check bool) "shrank" true (r.Fuzz.Shrink.steps > 0);
  Alcotest.(check bool) "result compiles" true
    (match Minijava.Compile.program_of_source r.Fuzz.Shrink.source with
    | Ok _ -> true
    | Error _ -> false);
  Alcotest.(check bool) "smaller than the original" true
    (String.length r.Fuzz.Shrink.source < String.length (Fuzz.Gen.source g))

let suite =
  [
    ("generator: deterministic per seed", `Quick, test_generator_deterministic);
    ("generator: seeds vary", `Quick, test_generator_varies);
    ("generator: programs compile", `Quick, test_generated_programs_compile);
    ("pretty: parse round-trip", `Quick, test_pretty_round_trip);
    ("oracle: clean programs pass the matrix", `Quick,
     test_oracle_accepts_clean_programs);
    ("oracle: injection seed clean without fault", `Quick,
     test_injection_seed_is_clean_without_fault);
    ("oracle: injected fault caught and shrunk", `Slow,
     test_injected_fault_is_caught_and_shrunk);
    ("driver: replay protocol", `Quick, test_replay_protocol);
    ("shrink: terminates at a compiling minimum", `Quick,
     test_shrink_terminates_and_decreases);
  ]
