(* Cross-engine bit-identity tests (DESIGN.md section 10).

   The switch engine (the reference fetch/decode loop) and the closure
   engine (direct-threaded, pre-compiled) implement one semantics; their
   contract is bit-identity in every observable — program output, cycle
   count, the full core stats vector, the interpreted/compiled split, GC
   activity. The closure engine batches step/cycle commits per basic
   block and caches the top of stack in a register, so these tests pin
   exactly the places where such batching could drift: observer
   specialization, GC compaction in mid-loop, and budget exhaustion
   (where the batched prologue must fall back to per-instruction
   accounting to die on precisely the same step). *)

module W = Workloads.Workload
module H = Workloads.Harness

let all_workloads = Workloads.Specjvm.all @ Workloads.Javagrande.all

let workload name =
  match List.find_opt (fun (w : W.t) -> w.name = name) all_workloads with
  | Some w -> w
  | None -> Alcotest.failf "no workload named %s" name

let check_same_run ~ctx (sw : H.run_result) (cl : H.run_result) =
  Alcotest.(check string) (ctx ^ ": output") sw.output cl.output;
  Alcotest.(check int) (ctx ^ ": cycles") sw.cycles cl.cycles;
  Alcotest.(check int)
    (ctx ^ ": interpreted_cycles")
    sw.interpreted_cycles cl.interpreted_cycles;
  Alcotest.(check int) (ctx ^ ": compiled_cycles") sw.compiled_cycles
    cl.compiled_cycles;
  Alcotest.(check int) (ctx ^ ": gc_count") sw.gc_count cl.gc_count;
  Alcotest.(check int) (ctx ^ ": methods_compiled") sw.methods_compiled
    cl.methods_compiled;
  Alcotest.(check int)
    (ctx ^ ": faulting_prefetches")
    sw.faulting_prefetches cl.faulting_prefetches;
  Alcotest.(check int) (ctx ^ ": spec_guard_trips") sw.spec_guard_trips
    cl.spec_guard_trips;
  List.iter2
    (fun (name_a, a) (name_b, b) ->
      Alcotest.(check string) (ctx ^ ": stats key order") name_a name_b;
      Alcotest.(check int) (ctx ^ ": stats " ^ name_a) a b)
    (Memsim.Stats.core_alist sw.stats)
    (Memsim.Stats.core_alist cl.stats)

(* Full matrix over two representative workloads (MonteCarlo exercises
   the JIT + prefetch path heavily, Euler is array/loop dense), both
   machines, prefetching off and fully on. *)
let test_bit_identity_matrix () =
  List.iter
    (fun name ->
      let w = workload name in
      List.iter
        (fun machine ->
          List.iter
            (fun mode ->
              let run engine = H.run ~engine ~mode ~machine w in
              let ctx =
                Printf.sprintf "%s/%s" name machine.Memsim.Config.name
              in
              check_same_run ~ctx (run Vm.Interp.Switch)
                (run Vm.Interp.Closure))
            [ Strideprefetch.Options.Off; Strideprefetch.Options.Inter_intra ])
        [ Memsim.Config.pentium4; Memsim.Config.athlon_mp ])
    [ "MonteCarlo"; "Euler" ]

(* The closure engine specializes its artifact on the observer
   fingerprint: with telemetry + profiling installed it compiles the
   instrumented per-instruction variant, without them the batched plain
   variant. Both must charge identical cycles — observation is free. *)
let test_observer_specialization_twins () =
  let w = workload "MonteCarlo" in
  let machine = Memsim.Config.athlon_mp in
  let mode = Strideprefetch.Options.Inter_intra in
  let plain = H.run ~engine:Vm.Interp.Closure ~mode ~machine w in
  let instrumented =
    H.run ~engine:Vm.Interp.Closure ~telemetry:true ~profile:true ~mode
      ~machine w
  in
  check_same_run ~ctx:"observer twins" plain instrumented

(* A workload sized to overflow its heap limit repeatedly while the hot
   loop is executing: compaction rewrites every simulated address (and
   flushes caches and DTLB) between two iterations of a closure-compiled
   block. The engines must agree on when collections happen and on every
   cycle before and after. *)
let gc_churn =
  {
    W.name = "gc_churn";
    suite = `Specjvm;
    description = "engine test fixture: compaction under a running loop";
    paper_note = "";
    heap_limit_bytes = 24 * 1024;
    source =
      {|
class Node { int v; Node next; Node(int x) { v = x; next = null; } }
class T {
  static int churn(int n) {
    int acc = 0;
    Node keep = new Node(7);
    for (int i = 0; i < n; i = i + 1) {
      Node t = new Node(i);
      t.next = keep;
      acc = (acc + t.v + t.next.v) % 9973;
    }
    return acc;
  }
  static void main() {
    int acc = 0;
    for (int r = 0; r < 6; r = r + 1) { acc = (acc + T.churn(800)) % 9973; }
    print(acc);
  }
}
|};
  }

let test_gc_compaction_mid_loop () =
  let machine = Memsim.Config.athlon_mp in
  let mode = Strideprefetch.Options.Inter_intra in
  let run engine = H.run ~engine ~mode ~machine gc_churn in
  let sw = run Vm.Interp.Switch in
  let cl = run Vm.Interp.Closure in
  Alcotest.(check bool)
    "collections actually happened" true (sw.gc_count > 0);
  check_same_run ~ctx:"gc churn" sw cl

(* Budget exhaustion must be exact: the closure engine pre-commits a
   whole block's steps at the block head, so a budget that would expire
   inside the block has to be detected up front and the block re-run
   through the per-instruction fallback chain — [Budget_exhausted] then
   fires on precisely the same step as the reference engine. *)
let budget_source =
  {|
class T {
  static void main() {
    int acc = 0;
    for (int i = 0; i > -1; i = i + 1) { acc = (acc + i) % 65536; }
    print(acc);
  }
}
|}

let run_out_of_budget engine max_steps =
  let program = Helpers.compile budget_source in
  let machine = Memsim.Config.pentium4 in
  let options =
    { (Vm.Interp.default_options machine) with Vm.Interp.max_steps; engine }
  in
  let interp = Vm.Interp.create ~options machine program in
  match Vm.Interp.run interp with
  | _ -> Alcotest.fail "expected Budget_exhausted"
  | exception Vm.Interp.Budget_exhausted budget ->
      (budget, Vm.Interp.steps interp, Vm.Interp.stats interp)

let test_budget_exhaustion_is_engine_invariant () =
  (* Several budgets so expiry lands at different offsets inside the
     loop's basic block. *)
  List.iter
    (fun max_steps ->
      let b_sw, steps_sw, stats_sw =
        run_out_of_budget Vm.Interp.Switch max_steps
      in
      let b_cl, steps_cl, stats_cl =
        run_out_of_budget Vm.Interp.Closure max_steps
      in
      let ctx = Printf.sprintf "max_steps=%d" max_steps in
      Alcotest.(check int) (ctx ^ ": payload") max_steps b_sw;
      Alcotest.(check int) (ctx ^ ": payloads agree") b_sw b_cl;
      Alcotest.(check int) (ctx ^ ": steps at raise") steps_sw steps_cl;
      Alcotest.(check int)
        (ctx ^ ": retired at raise")
        stats_sw.Memsim.Stats.retired_instructions
        stats_cl.Memsim.Stats.retired_instructions)
    [ 1000; 1001; 1002; 1003; 1004; 1005; 1006 ]

(* Two closure runs of the same cell from fresh states: the artifact
   compiler and the simulation must be fully deterministic. *)
let test_rerun_determinism () =
  let w = workload "MonteCarlo" in
  let machine = Memsim.Config.pentium4 in
  let mode = Strideprefetch.Options.Inter_intra in
  let a = H.run ~engine:Vm.Interp.Closure ~mode ~machine w in
  let b = H.run ~engine:Vm.Interp.Closure ~mode ~machine w in
  check_same_run ~ctx:"rerun" a b

let suite =
  [
    Alcotest.test_case "bit-identity: workload x machine x mode" `Slow
      test_bit_identity_matrix;
    Alcotest.test_case "observer specialization twins" `Slow
      test_observer_specialization_twins;
    Alcotest.test_case "GC compaction mid-loop" `Quick
      test_gc_compaction_mid_loop;
    Alcotest.test_case "budget exhaustion is engine-invariant" `Quick
      test_budget_exhaustion_is_engine_invariant;
    Alcotest.test_case "re-run determinism" `Quick test_rerun_determinism;
  ]
