(* Differential test of the dense-array heap (lib/vm/heap.ml).

   The heap's id -> object map is a dense array indexed by the sequential
   allocation id, with tombstones left by GC compaction. This test runs a
   long randomized script of allocations, field/element writes, reads,
   address probes and sliding compactions against a trivial reference
   model (a Hashtbl of pure-OCaml shadow objects) and checks that every
   observable answer — [get_field]/[get_elem], [exists], [base_of] order,
   [value_at], [object_at], [live_objects], [iter_ids_in_address_order] —
   agrees with the model at every step. The script is deterministic
   (seeded PRNG), so failures reproduce. *)

module C = Vm.Classfile
module V = Vm.Value
module H = Vm.Heap

let point_class =
  C.make_class ~class_id:0 ~class_name:"Point"
    ~field_specs:[ ("x", false); ("y", false); ("next", true) ]

type kind = Obj | Int_arr | Ref_arr

type shadow = { kind : kind; slots : V.t array }

type model = {
  tbl : (int, shadow) Hashtbl.t;  (** live ids only *)
  mutable order : int list;  (** live ids in allocation order, reversed *)
}

let slot_count = function
  | Obj -> 3 (* point_class: x, y, next *)
  | Int_arr | Ref_arr -> 0 (* filled in at alloc from the random length *)

let _ = slot_count

let alloc st model heap =
  let id, shadow =
    match Random.State.int st 3 with
    | 0 ->
        ( H.alloc_object heap point_class,
          { kind = Obj; slots = Array.make 3 V.Null } )
    | 1 ->
        let len = 1 + Random.State.int st 6 in
        ( H.alloc_int_array heap len,
          { kind = Int_arr; slots = Array.make len (V.Int 0) } )
    | _ ->
        let len = 1 + Random.State.int st 4 in
        ( H.alloc_ref_array heap len,
          { kind = Ref_arr; slots = Array.make len V.Null } )
  in
  Hashtbl.replace model.tbl id shadow;
  model.order <- id :: model.order;
  id

let live_ids model = List.rev model.order

let random_live st model =
  match model.order with
  | [] -> None
  | order ->
      let ids = Array.of_list order in
      Some ids.(Random.State.int st (Array.length ids))

let write st model heap id =
  let shadow = Hashtbl.find model.tbl id in
  let n = Array.length shadow.slots in
  if n > 0 then begin
    let slot = Random.State.int st n in
    let value =
      match shadow.kind with
      | Int_arr -> V.Int (Random.State.int st 1000)
      | Obj when slot < 2 -> V.Int (Random.State.int st 1000)
      | Obj | Ref_arr -> (
          (* a ref slot: Null or a reference to some live object *)
          match random_live st model with
          | Some target when Random.State.bool st -> V.Ref target
          | _ -> V.Null)
    in
    shadow.slots.(slot) <- value;
    match shadow.kind with
    | Obj -> H.set_field heap id slot value
    | Int_arr | Ref_arr -> H.set_elem heap id slot value
  end

let read_slot heap kind id slot =
  match kind with
  | Obj -> H.get_field heap id slot
  | Int_arr | Ref_arr -> H.get_elem heap id slot

let slot_addr heap kind id slot =
  match kind with
  | Obj -> H.field_addr heap id slot
  | Int_arr | Ref_arr -> H.elem_addr heap id slot

let check_object heap id shadow =
  if not (H.exists heap id) then Alcotest.failf "id %d should exist" id;
  Array.iteri
    (fun slot expected ->
      let got = read_slot heap shadow.kind id slot in
      if got <> expected then
        Alcotest.failf "id %d slot %d disagrees with model" id slot;
      (* the same value must be recoverable through the address map, which
         is what speculative loads use *)
      let addr = slot_addr heap shadow.kind id slot in
      (match H.value_at heap addr with
      | Some v when v = expected -> ()
      | _ -> Alcotest.failf "value_at for id %d slot %d disagrees" id slot);
      match H.object_at heap addr with
      | Some owner when owner = id -> ()
      | _ -> Alcotest.failf "object_at for id %d slot %d disagrees" id slot)
    shadow.slots

let check_full heap model ~dead =
  (* dead ids are invisible *)
  List.iter
    (fun id ->
      if H.exists heap id then Alcotest.failf "dead id %d still exists" id)
    dead;
  (* every live object agrees slot-for-slot with the model *)
  Hashtbl.iter (fun id shadow -> check_object heap id shadow) model.tbl;
  Alcotest.(check int) "live_objects" (Hashtbl.length model.tbl)
    (H.live_objects heap);
  (* address order = allocation order, and bases strictly increase
     (sliding compaction preserves internal order; Section 4 of the
     paper relies on this) *)
  let iterated = ref [] in
  H.iter_ids_in_address_order heap (fun id -> iterated := id :: !iterated);
  let iterated = List.rev !iterated in
  if iterated <> live_ids model then
    Alcotest.fail "iter_ids_in_address_order disagrees with allocation order";
  ignore
    (List.fold_left
       (fun prev id ->
         let base = H.base_of heap id in
         if base <= prev then Alcotest.failf "base of id %d not increasing" id;
         base)
       (-1) iterated)

let compact st model heap =
  (* kill a random ~25% of live objects *)
  let dead = Hashtbl.create 16 in
  Hashtbl.iter
    (fun id _ ->
      if Random.State.int st 4 = 0 then Hashtbl.replace dead id ())
    model.tbl;
  let removed = H.compact heap ~live:(fun id -> not (Hashtbl.mem dead id)) in
  Alcotest.(check int) "removed count" (Hashtbl.length dead) removed;
  Hashtbl.iter (fun id () -> Hashtbl.remove model.tbl id) dead;
  model.order <-
    List.filter (fun id -> not (Hashtbl.mem dead id)) model.order;
  Hashtbl.fold (fun id () acc -> id :: acc) dead []

let test_differential () =
  let st = Random.State.make [| 0x5eed; 2003 |] in
  let heap = H.create () in
  let model = { tbl = Hashtbl.create 64; order = [] } in
  let all_dead = ref [] in
  for step = 1 to 3000 do
    (match Random.State.int st 10 with
    | 0 | 1 | 2 -> ignore (alloc st model heap)
    | 3 | 4 | 5 | 6 -> (
        match random_live st model with
        | Some id -> write st model heap id
        | None -> ignore (alloc st model heap))
    | 7 | 8 -> (
        (* spot-check one object, exercising the value_at memo by probing
           the same object repeatedly before switching *)
        match random_live st model with
        | Some id ->
            let shadow = Hashtbl.find model.tbl id in
            check_object heap id shadow;
            check_object heap id shadow
        | None -> ())
    | _ ->
        let dead = compact st model heap in
        all_dead := dead @ !all_dead);
    if step mod 500 = 0 then check_full heap model ~dead:!all_dead
  done;
  check_full heap model ~dead:!all_dead;
  (* ids are never recycled: every tombstoned id stays dead forever *)
  List.iter
    (fun id ->
      if H.exists heap id then Alcotest.failf "recycled dead id %d" id)
    !all_dead;
  H.clear heap;
  Alcotest.(check int) "clear empties" 0 (H.live_objects heap);
  List.iter
    (fun id ->
      if H.exists heap id then Alcotest.failf "id %d survived clear" id)
    (live_ids model)

let test_dangling_get_raises () =
  let heap = H.create () in
  let a = H.alloc_object heap point_class in
  let b = H.alloc_object heap point_class in
  ignore (H.compact heap ~live:(fun id -> id = b));
  Alcotest.(check bool) "b survives" true (H.exists heap a = false);
  Alcotest.(check bool) "dangling get_field raises" true
    (try
       ignore (H.get_field heap a 0);
       false
     with _ -> true);
  (* out-of-range ids (never allocated) are not confused with live ones *)
  Alcotest.(check bool) "unallocated id" false (H.exists heap 9999);
  Alcotest.(check bool) "negative id" false (H.exists heap (-3))

let suite =
  [
    ("dense heap vs reference model (randomized)", `Quick, test_differential);
    ("dangling ids stay dead", `Quick, test_dangling_get_raises);
  ]
