(* Tests for the static-analysis layer (lib/analysis): the type-state
   verifier, the prefetch-safety checkers, the lint rules, and the
   wiring — verify-each-pass debug mode, the fuzz oracle's lint cell,
   and the skip-guard-dominance fault injection. *)

module B = Vm.Bytecode
module SP = Strideprefetch
module A = Analysis

(* --- helpers ------------------------------------------------------------- *)

let meth ?(name = "T.m") ?(max_locals = 4) ?(n_pref_regs = 0)
    ?(returns_value = false) code =
  let m =
    Vm.Classfile.make_method ~method_id:0 ~method_name:name ~arity:0
      ~returns_value ~max_locals ~code:(Array.of_list code)
  in
  m.Vm.Classfile.n_pref_regs <- n_pref_regs;
  m

let program_of m =
  { Vm.Classfile.classes = [||]; methods = [| m |]; statics = [||]; entry = 0 }

let checkers diags = List.map (fun (d : A.Diag.t) -> d.A.Diag.checker) diags

let expect_checker what checker diags =
  if not (List.mem checker (checkers diags)) then
    Alcotest.failf "%s: expected a %S finding, got [%s]" what checker
      (String.concat "; "
         (List.map (fun (d : A.Diag.t) -> d.A.Diag.checker) diags))

let getfield ~site =
  B.Getfield { site; offset = 8; name = "f"; is_ref = false }

let spec_safety_diags ?(n_pref_regs = 1) code =
  let m = meth ~n_pref_regs code in
  let cfg = Jit.Cfg.build m.Vm.Classfile.code in
  let idom = Jit.Dominators.compute cfg in
  A.Spec_safety.check ~cfg ~idom m

(* --- the type-state verifier --------------------------------------------- *)

let typestate code =
  let m = meth code in
  A.Typestate.check ~program:(program_of m) m

let test_typestate_structural () =
  let expect_error what code =
    match typestate code with
    | [] -> Alcotest.failf "%s: malformed body accepted" what
    | [ d ] ->
        Alcotest.(check string) "checker name" "typestate" d.A.Diag.checker
    | _ -> Alcotest.failf "%s: more than one diagnostic" what
  in
  expect_error "branch out of range" [ B.Goto 99 ];
  expect_error "falls off the end" [ B.Iconst 1; B.Pop ];
  expect_error "stack underflow" [ B.Pop; B.Return ];
  expect_error "local out of range" [ B.Iload 77; B.Pop; B.Return ];
  expect_error "inconsistent join depth"
    [
      B.Iconst 0;
      (* pc 1: branch to 4 with depth 0; fall through pushes *)
      B.If (B.Eq, 4);
      B.Iconst 1;
      B.Goto 4;
      (* pc 4: joined at depths 0 and 1 *)
      B.Iconst 2;
      B.Pop;
      B.Return;
    ]

let test_typestate_value_kinds () =
  let expect_error what code =
    match typestate code with
    | [] -> Alcotest.failf "%s: misuse accepted" what
    | _ -> ()
  in
  (* integer arithmetic on a definite reference *)
  expect_error "arith on null"
    [ B.Iconst 1; B.Aconst_null; B.Iadd; B.Pop; B.Return ];
  expect_error "arith on fresh object"
    [ B.Iconst 1; B.New 0; B.Iadd; B.Pop; B.Return ];
  (* dereference of a definite null *)
  expect_error "getfield on definite null"
    [ B.Aconst_null; getfield ~site:0; B.Pop; B.Return ];
  (* array index must be an int *)
  expect_error "ref as array index"
    [
      B.Iconst 4;
      B.Newarray B.Int_array;
      B.Aconst_null;
      B.Iaload { len_site = 0; elem_site = 1 };
      B.Pop;
      B.Return;
    ];
  (* value return in a void method *)
  (match
     A.Typestate.check
       ~program:(program_of (meth [ B.Iconst 1; B.Ireturn ]))
       (meth [ B.Iconst 1; B.Ireturn ])
   with
  | [] -> Alcotest.fail "value return in void method accepted"
  | _ -> ());
  (* null-tolerant contexts stay accepted: comparisons and null tests *)
  (match
     typestate
       [
         B.Aconst_null;
         B.Ifnull 3;
         B.Goto 3;
         B.Aconst_null;
         B.Aconst_null;
         B.If_acmpeq 6;
         B.Return;
       ]
   with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "null test rejected: %s" d.A.Diag.message)

let test_typestate_reg_use_before_def () =
  let m =
    meth ~n_pref_regs:1
      [ B.Prefetch_indirect { reg = 0; offset = 0; guarded = false }; B.Return ]
  in
  match A.Typestate.check ~program:(program_of m) m with
  | [ d ] ->
      Alcotest.(check string) "checker" "typestate" d.A.Diag.checker;
      Alcotest.(check int) "pc" 0 d.A.Diag.pc
  | _ -> Alcotest.fail "use-before-def of a prefetch register accepted"

let test_typestate_accepts_frontend_output () =
  let program = Helpers.compile Test_strideprefetch.quickstart_source in
  Array.iter
    (fun m ->
      match A.Typestate.check ~program m with
      | [] -> ()
      | d :: _ ->
          Alcotest.failf "frontend output rejected: %s"
            (A.Diag.render ~meth:m d))
    program.Vm.Classfile.methods

(* --- prefetch-safety checkers -------------------------------------------- *)

let test_spec_def_use_diamond () =
  (* both arms define p0, so every path defines it (the type-state
     verifier is happy) — but neither definition dominates the use *)
  let diags =
    spec_safety_diags
      [
        B.Iconst 1;
        B.If (B.Eq, 4);
        B.Spec_load { site = 0; distance = 8; reg = 0 };
        B.Goto 5;
        B.Spec_load { site = 0; distance = 8; reg = 0 };
        B.Prefetch_indirect { reg = 0; offset = 0; guarded = false };
        B.Return;
      ]
  in
  expect_checker "diamond defs" "spec-def-use" diags

let test_guard_dominance_bypass () =
  (* a path around the spec_load reaches the guarded dereference *)
  let diags =
    spec_safety_diags
      [
        B.Iconst 1;
        B.If (B.Eq, 3);
        B.Spec_load { site = 0; distance = 8; reg = 0 };
        B.Prefetch_indirect { reg = 0; offset = 0; guarded = true };
        B.Return;
      ]
  in
  expect_checker "guard bypass" "guard-dominance" diags

let test_splice_purity_interrupted () =
  (* a store inside the spliced sequence is a miscompile *)
  let diags =
    spec_safety_diags
      [
        B.Spec_load { site = 0; distance = 8; reg = 0 };
        B.Iconst 5;
        B.Istore 0;
        B.Prefetch_indirect { reg = 0; offset = 0; guarded = false };
        B.Return;
      ]
  in
  expect_checker "store in splice" "splice-purity" diags;
  (* the clean contiguous splice passes all three checkers *)
  let clean =
    spec_safety_diags
      [
        B.Spec_load { site = 0; distance = 8; reg = 0 };
        B.Prefetch_indirect { reg = 0; offset = 0; guarded = true };
        B.Prefetch_indirect { reg = 0; offset = 8; guarded = false };
        B.Return;
      ]
  in
  Alcotest.(check int) "clean splice" 0 (List.length clean)

(* --- lint rules ---------------------------------------------------------- *)

let test_redundant_prefetch () =
  let lint code =
    A.Lint.redundant_prefetch ~cfg:(Jit.Cfg.build (Array.of_list code))
  in
  (* duplicate with no intervening re-anchor: flagged *)
  let dup =
    lint
      [
        B.Prefetch_inter { site = 0; distance = 8 };
        B.Prefetch_inter { site = 0; distance = 8 };
        B.Return;
      ]
  in
  expect_checker "duplicate prefetch" "redundant-prefetch" dup;
  (* an anchor load in between recomputes A(site): not flagged *)
  let reanchored =
    lint
      [
        B.Prefetch_inter { site = 0; distance = 8 };
        getfield ~site:0;
        B.Prefetch_inter { site = 0; distance = 8 };
        B.Return;
      ]
  in
  Alcotest.(check int) "re-anchored" 0 (List.length reanchored);
  (* different distances are different address expressions: not flagged *)
  let different =
    lint
      [
        B.Prefetch_inter { site = 0; distance = 8 };
        B.Prefetch_inter { site = 0; distance = 16 };
        B.Return;
      ]
  in
  Alcotest.(check int) "different distances" 0 (List.length different)

let test_dead_spec_reg () =
  let dead =
    A.Lint.dead_spec_regs
      [| B.Spec_load { site = 0; distance = 8; reg = 0 }; B.Return |]
  in
  expect_checker "dead spec reg" "dead-spec-reg" dead;
  let live =
    A.Lint.dead_spec_regs
      [|
        B.Spec_load { site = 0; distance = 8; reg = 0 };
        B.Prefetch_indirect { reg = 0; offset = 0; guarded = false };
        B.Return;
      |]
  in
  Alcotest.(check int) "live spec reg" 0 (List.length live)

let direct_report ~plan_distance ~stride =
  let pattern = { SP.Stride.stride; matched = 19; samples = 19 } in
  let action =
    {
      SP.Codegen.anchor_site = 0;
      anchor_pc = 0;
      kind = SP.Codegen.Prefetch_direct { distance = plan_distance };
    }
  in
  {
    SP.Pass.method_name = "T.m";
    loop_id = 0;
    header_block = 0;
    candidate_sites = [ 0 ];
    evidence = [];
    inter_patterns = [ (0, pattern) ];
    intra_patterns = [];
    plan = { SP.Codegen.actions = [ action ]; rejected = []; regs_used = 0 };
    promoted = false;
    skipped_low_trip = false;
    iterations_observed = 20;
    inspection_steps = 100;
    predictions = [];
    inspection_skipped = false;
    inspection_shortened = false;
  }

let test_plan_consistency () =
  let code splice_distance =
    [|
      getfield ~site:0;
      B.Prefetch_inter { site = 0; distance = splice_distance };
      B.Return;
    |]
  in
  (* consistent: plan distance = stride x scheduling distance, splice
     matches the plan *)
  let ok =
    A.Lint.plan_consistency ~code:(code 16)
      ~reports:[ direct_report ~plan_distance:16 ~stride:16 ]
      ~scheduling_distance:1 ()
  in
  Alcotest.(check int) "consistent plan" 0 (List.length ok);
  (* spliced distance differs from the plan's *)
  expect_checker "splice distance" "plan-consistency"
    (A.Lint.plan_consistency ~code:(code 8)
       ~reports:[ direct_report ~plan_distance:16 ~stride:16 ]
       ~scheduling_distance:1 ());
  (* plan distance contradicts the detected stride pattern *)
  expect_checker "plan vs pattern" "plan-consistency"
    (A.Lint.plan_consistency ~code:(code 8)
       ~reports:[ direct_report ~plan_distance:8 ~stride:16 ]
       ~scheduling_distance:1 ());
  (* planned action never spliced *)
  expect_checker "missing splice" "plan-consistency"
    (A.Lint.plan_consistency
       ~code:[| getfield ~site:0; B.Return |]
       ~reports:[ direct_report ~plan_distance:16 ~stride:16 ]
       ~scheduling_distance:1 ())

let deref_report =
  let action =
    {
      SP.Codegen.anchor_site = 0;
      anchor_pc = 0;
      kind =
        SP.Codegen.Prefetch_deref
          {
            distance = 16;
            reg = 0;
            targets =
              [ { SP.Codegen.target_site = 1; offset = 8; via_intra = true } ];
          };
    }
  in
  {
    (direct_report ~plan_distance:16 ~stride:16) with
    SP.Pass.plan =
      { SP.Codegen.actions = [ action ]; rejected = []; regs_used = 1 };
  }

let test_guard_required () =
  let code guarded =
    [|
      getfield ~site:0;
      B.Spec_load { site = 0; distance = 16; reg = 0 };
      B.Prefetch_indirect { reg = 0; offset = 8; guarded };
      B.Return;
    |]
  in
  (* machine requires guarding; intra-stride target spliced unguarded *)
  expect_checker "unguarded on guarding machine" "guard-required"
    (A.Lint.plan_consistency ~code:(code false) ~reports:[ deref_report ]
       ~scheduling_distance:1 ~require_guarded:true ());
  (* guarded form where the machine calls for hardware prefetch *)
  expect_checker "guarded on hardware machine" "guard-required"
    (A.Lint.plan_consistency ~code:(code true) ~reports:[ deref_report ]
       ~scheduling_distance:1 ~require_guarded:false ());
  (* matching forms: clean both ways *)
  Alcotest.(check int) "guarded where required" 0
    (List.length
       (A.Lint.plan_consistency ~code:(code true) ~reports:[ deref_report ]
          ~scheduling_distance:1 ~require_guarded:true ()));
  Alcotest.(check int) "hardware where required" 0
    (List.length
       (A.Lint.plan_consistency ~code:(code false) ~reports:[ deref_report ]
          ~scheduling_distance:1 ~require_guarded:false ()))

(* --- the composing driver and the wiring --------------------------------- *)

let test_check_method_gates_on_typestate () =
  (* a structurally broken body yields exactly the type-state finding —
     CFG-level checkers never run on garbage *)
  let m = meth [ B.Goto 99 ] in
  match A.Check.check_method ~program:(program_of m) m with
  | [ d ] -> Alcotest.(check string) "checker" "typestate" d.A.Diag.checker
  | ds -> Alcotest.failf "expected exactly the gate finding, got %d" (List.length ds)

let quickstart_workload : Workloads.Workload.t =
  {
    Workloads.Workload.name = "quickstart";
    suite = `Specjvm;
    description = "tok-vector scan kernel (test workload)";
    paper_note = "";
    source = Test_strideprefetch.quickstart_source;
    heap_limit_bytes = 64 * 1024 * 1024;
  }

let test_transformed_workload_is_lint_clean () =
  (* end-to-end: run the quickstart kernel with prefetching on, then lint
     every method of the executed program with the full stack, plan-aware
     lints included. Sanity-check the run actually spliced something. *)
  List.iter
    (fun machine ->
      let opts = SP.Options.default in
      let r =
        Workloads.Harness.run ~opts ~mode:SP.Options.Inter_intra ~machine
          quickstart_workload
      in
      let spliced =
        Array.exists
          (fun (m : Vm.Classfile.method_info) ->
            Array.exists A.Spec_safety.is_prefetch_family m.Vm.Classfile.code)
          r.Workloads.Harness.program.Vm.Classfile.methods
      in
      Alcotest.(check bool) "prefetches were spliced" true spliced;
      Array.iter
        (fun (m : Vm.Classfile.method_info) ->
          match
            A.Check.check_method ~program:r.Workloads.Harness.program
              ~reports:r.Workloads.Harness.reports
              ~scheduling_distance:opts.SP.Options.scheduling_distance
              ~require_guarded:(SP.Options.use_guarded opts machine)
              m
          with
          | [] -> ()
          | d :: _ ->
              Alcotest.failf "%s not lint-clean on %s: %s"
                m.Vm.Classfile.method_name machine.Memsim.Config.name
                (A.Diag.render ~meth:m d))
        r.Workloads.Harness.program.Vm.Classfile.methods)
    Memsim.Config.machines

let test_verify_each_pass_mode () =
  (* clean run: the per-pass verifier stays silent *)
  (try
     ignore
       (Workloads.Harness.run ~verify_each_pass:true
          ~mode:SP.Options.Inter_intra ~machine:Memsim.Config.pentium4
          quickstart_workload)
   with Jit.Pipeline.Verification_failed { pass_name; message; _ } ->
     Alcotest.failf "clean run failed verification after %s: %s" pass_name
       message);
  (* injected miscompile: the verifier aborts compilation naming the
     offending pass *)
  let opts =
    { SP.Options.default with SP.Options.fault_skip_guard_dominance = true }
  in
  match
    Workloads.Harness.run ~opts ~verify_each_pass:true
      ~mode:SP.Options.Inter_intra ~machine:Memsim.Config.pentium4
      quickstart_workload
  with
  | exception Jit.Pipeline.Verification_failed { pass_name; message; _ } ->
      Alcotest.(check string) "offending pass" "stride-prefetch" pass_name;
      Alcotest.(check bool) "pc-level diagnostic" true
        (Helpers.contains message "pc ")
  | _ -> Alcotest.fail "injected miscompile survived verify-each-pass"

let lint_cells =
  (* baseline + one prefetching cell: enough for the lint oracle, cheap
     enough for the unit suite *)
  [
    {
      Fuzz.Oracle.mode = SP.Options.Off;
      standard_passes = true;
      machine = Memsim.Config.pentium4;
    };
    {
      Fuzz.Oracle.mode = SP.Options.Inter_intra;
      standard_passes = true;
      machine = Memsim.Config.pentium4;
    };
  ]

let test_oracle_lint_cell_catches_injection () =
  (* without the fault the program passes the full oracle... *)
  (match
     Fuzz.Oracle.check ~cells:lint_cells
       ~source:Test_strideprefetch.quickstart_source
       ~heap_limit_bytes:(64 * 1024 * 1024) ()
   with
  | Fuzz.Oracle.Pass _ -> ()
  | Fuzz.Oracle.Fail f ->
      Alcotest.failf "clean program failed the oracle: %s"
        (Fuzz.Oracle.describe f));
  (* ... with it, the lint cell (and only a static check — the program's
     behaviour is unchanged) reports the miscompile *)
  match
    Fuzz.Oracle.check ~cells:lint_cells
      ~tweak_prefetch:(fun o ->
        { o with SP.Options.fault_skip_guard_dominance = true })
      ~source:Test_strideprefetch.quickstart_source
      ~heap_limit_bytes:(64 * 1024 * 1024) ()
  with
  | Fuzz.Oracle.Fail (Fuzz.Oracle.Lint_violation { meth; message; _ }) ->
      Alcotest.(check bool) "names the kernel" true
        (Helpers.contains meth "Kernel");
      Alcotest.(check bool) "pc-level diagnostic" true
        (Helpers.contains message "pc ")
  | Fuzz.Oracle.Fail f ->
      Alcotest.failf "wrong failure class: %s" (Fuzz.Oracle.describe f)
  | Fuzz.Oracle.Pass _ ->
      Alcotest.fail "injected guard-dominance miscompile went undetected"

let test_fuzz_sample_is_lint_clean () =
  (* a small deterministic corpus through the full oracle (the lint cell
     runs inside it); seed 2026 matches the @lint lane *)
  for index = 0 to 4 do
    let _, verdict =
      Fuzz.Driver.check_seed ~cells:lint_cells ~seed:(2026 + index)
        ~max_size:6 ()
    in
    match verdict with
    | Fuzz.Oracle.Pass _ -> ()
    | Fuzz.Oracle.Fail f ->
        Alcotest.failf "seed %d not lint-clean: %s" (2026 + index)
          (Fuzz.Oracle.describe f)
  done

(* --- the address-algebra prediction tier --------------------------------- *)

let test_addralg_value_lattice () =
  let module V = A.Addralg.Value in
  let i = V.sym 1 in
  Alcotest.(check bool) "join is idempotent" true (V.equal (V.join i i) i);
  Alcotest.(check bool) "different multiples lose affinity" true
    (V.is_top (V.join (V.scale 2 i) (V.scale 3 i)));
  Alcotest.(check bool) "top absorbs on the right" true
    (V.is_top (V.join i V.top));
  Alcotest.(check bool) "top absorbs on the left" true
    (V.is_top (V.join V.top i));
  Alcotest.(check bool) "different constants lose affinity" true
    (V.is_top (V.join (V.const 1) (V.const 2)));
  Alcotest.(check bool) "difference cancels the symbol" true
    (V.equal (V.sub (V.add i (V.const 4)) i) (V.const 4));
  Alcotest.(check bool) "scaling distributes over addition" true
    (V.equal
       (V.scale 4 (V.add i (V.const 3)))
       (V.add (V.scale 4 i) (V.const 12)));
  (* join monotonicity on the height-2 chain: the join of any two values
     is an upper bound of both — it equals each operand or is top *)
  let samples =
    [ V.top; V.const 0; V.const 7; i; V.sym 2; V.add i (V.const 8);
      V.scale 4 i ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let j = V.join a b in
          let above x = V.is_top j || V.equal j x in
          Alcotest.(check bool) "join bounds both operands" true
            (above a && above b))
        samples)
    samples

(* Nested counted loops over the same array: arr[i] in the outer body,
   arr[j] in the inner loop (its induction variable is inner-loop-carried,
   reset every outer iteration). *)
let nested_loops_meth () =
  meth
    [
      B.Iconst 0;
      B.Istore 1 (* i = 0 *);
      (* outer header (pc 2) *)
      B.Iload 1;
      B.Iconst 100;
      B.If_icmp (B.Ge, 28) (* exit *);
      B.Aload 0;
      B.Iload 1;
      B.Iaload { len_site = 0; elem_site = 1 } (* arr[i] *);
      B.Pop;
      B.Iconst 0;
      B.Istore 2 (* j = 0 *);
      (* inner header (pc 11) *)
      B.Iload 2;
      B.Iconst 10;
      B.If_icmp (B.Ge, 23);
      B.Aload 0;
      B.Iload 2;
      B.Iaload { len_site = 2; elem_site = 3 } (* arr[j] *);
      B.Pop;
      B.Iload 2;
      B.Iconst 1;
      B.Iadd;
      B.Istore 2;
      B.Goto 11 (* inner back edge *);
      (* inner exit (pc 23) *)
      B.Iload 1;
      B.Iconst 1;
      B.Iadd;
      B.Istore 1;
      B.Goto 2 (* outer back edge *);
      B.Return;
    ]

let loops_of m =
  let cfg = Jit.Cfg.build m.Vm.Classfile.code in
  let forest = Jit.Loops.analyze cfg in
  (cfg, Jit.Loops.postorder forest)

let find_prediction what (t : SP.Predict.t) site =
  match SP.Predict.find t site with
  | Some p -> p
  | None -> Alcotest.failf "%s: no prediction for site %d" what site

let test_addralg_nested_loops () =
  let m = nested_loops_meth () in
  let cfg, loops = loops_of m in
  let inner, outer =
    match loops with
    | [ a; b ] -> (a, b) (* postorder: children first *)
    | l -> Alcotest.failf "expected 2 loops, found %d" (List.length l)
  in
  Alcotest.(check bool) "inner has a parent" true (inner.Jit.Loops.parent <> None);
  Alcotest.(check bool) "outer is outermost" true (outer.Jit.Loops.parent = None);
  let predict loop candidates =
    A.Addralg.predict ~program:(program_of m) ~meth:m ~cfg ~loop ~candidates
  in
  (* outer target: arr[i] is affine with i stepping 1 -> stride 4, and its
     block dominates the back edge -> Certain; arr[j] is carried by the
     inner loop, whose back-edge join destroys affinity -> Unknown *)
  let t = predict outer [ 1; 3 ] in
  let p1 = find_prediction "outer arr[i]" t 1 in
  Alcotest.(check bool) "arr[i] certain" true
    (p1.SP.Predict.verdict = SP.Predict.Certain);
  Alcotest.(check (option int)) "arr[i] stride 4" (Some 4) p1.SP.Predict.stride;
  let p3 = find_prediction "outer arr[j]" t 3 in
  Alcotest.(check bool) "arr[j] unknown from the outer loop" true
    (p3.SP.Predict.verdict = SP.Predict.Unknown);
  (* inner target: j is this loop's own induction variable -> Certain *)
  let ti = predict inner [ 3 ] in
  let q3 = find_prediction "inner arr[j]" ti 3 in
  Alcotest.(check bool) "arr[j] certain in its own loop" true
    (q3.SP.Predict.verdict = SP.Predict.Certain);
  Alcotest.(check (option int)) "arr[j] stride 4" (Some 4)
    q3.SP.Predict.stride;
  (* the hybrid depth rule on these loops: an all-Certain inner loop is
     probed (its small-trip promotion must still be observed), never
     skipped outright; an Unknown candidate forces a full inspection *)
  let hybrid = { SP.Options.default with SP.Options.prediction = SP.Options.Hybrid } in
  (match SP.Predict.depth_of ~opts:hybrid ti ~loop:inner ~candidates:[ 3 ] with
  | SP.Predict.Probed n ->
      Alcotest.(check int) "probe budget is the small-trip floor"
        (min hybrid.SP.Options.inspect_iterations
           hybrid.SP.Options.small_trip_count)
        n
  | _ -> Alcotest.fail "all-certain inner loop should be probed");
  (match SP.Predict.depth_of ~opts:hybrid t ~loop:outer ~candidates:[ 1; 3 ] with
  | SP.Predict.Full -> ()
  | _ -> Alcotest.fail "unknown candidate should force full inspection");
  match SP.Predict.depth_of ~opts:hybrid t ~loop:outer ~candidates:[ 1 ] with
  | SP.Predict.Skipped -> ()
  | _ -> Alcotest.fail "all-certain outermost loop should be skipped"

(* A diamond that assigns the index local different affine values on its
   two arms: the join must lose affinity, not invent a stride. *)
let test_addralg_diamond_loses_affinity () =
  let m =
    meth
      [
        B.Iconst 0;
        B.Istore 1 (* i = 0 *);
        (* header (pc 2) *)
        B.Iload 1;
        B.Iconst 100;
        B.If_icmp (B.Ge, 22);
        B.Iload 2;
        B.If (B.Eq, 9);
        B.Iload 1;
        B.Goto 12 (* then arm: p = i *);
        B.Iload 1;
        B.Iconst 8;
        B.Iadd (* else arm: p = i + 8 *);
        B.Istore 2 (* join (pc 12): p *);
        B.Aload 0;
        B.Iload 2;
        B.Iaload { len_site = 0; elem_site = 1 } (* arr[p] *);
        B.Pop;
        B.Iload 1;
        B.Iconst 1;
        B.Iadd;
        B.Istore 1;
        B.Goto 2;
        B.Return;
      ]
  in
  let cfg, loops = loops_of m in
  let loop = List.hd loops in
  let t =
    A.Addralg.predict ~program:(program_of m) ~meth:m ~cfg ~loop
      ~candidates:[ 1 ]
  in
  let p = find_prediction "diamond arr[p]" t 1 in
  Alcotest.(check bool) "joined index is not affine" true
    (p.SP.Predict.verdict = SP.Predict.Unknown);
  Alcotest.(check (option int)) "no stride claimed" None p.SP.Predict.stride

(* An irreducible cycle inside a natural loop: the body branches into the
   middle of a two-block cycle, so the cycle has two entries and no
   natural header. The fixpoint must still terminate, claim the regular
   outer site, and refuse the cycle-carried one. *)
let test_addralg_irreducible_entry () =
  let m =
    meth
      [
        B.Iconst 0;
        B.Istore 1 (* i = 0 *);
        (* outer header (pc 2) *)
        B.Iload 1;
        B.Iconst 50;
        B.If_icmp (B.Ge, 27);
        B.Aload 0;
        B.Iload 1;
        B.Iaload { len_site = 0; elem_site = 1 } (* arr[i] *);
        B.Pop;
        B.Iload 2;
        B.If (B.Eq, 15) (* entry into the middle of the cycle *);
        (* cycle block B (pc 11) *)
        B.Iload 3;
        B.Iconst 1;
        B.Iadd;
        B.Istore 3;
        (* cycle block C (pc 15) — second entry *)
        B.Aload 0;
        B.Iload 3;
        B.Iaload { len_site = 2; elem_site = 3 } (* arr[t] *);
        B.Pop;
        B.Iload 3;
        B.Iconst 10;
        B.If_icmp (B.Lt, 11) (* retreating edge, not a natural back edge *);
        B.Iload 1;
        B.Iconst 1;
        B.Iadd;
        B.Istore 1;
        B.Goto 2 (* outer back edge *);
        B.Return;
      ]
  in
  let cfg, loops = loops_of m in
  (* the irreducible cycle is not a natural loop: only the outer counted
     loop is recognized *)
  (match loops with
  | [ l ] -> Alcotest.(check bool) "outermost" true (l.Jit.Loops.parent = None)
  | l -> Alcotest.failf "expected 1 natural loop, found %d" (List.length l));
  let loop = List.hd loops in
  (* termination is the point: the retreating edge iterates inside the
     fixpoint and must converge on the height-2 domain *)
  let t =
    A.Addralg.predict ~program:(program_of m) ~meth:m ~cfg ~loop
      ~candidates:[ 1; 3 ]
  in
  let p1 = find_prediction "regular site" t 1 in
  Alcotest.(check (option int)) "arr[i] still claimed" (Some 4)
    p1.SP.Predict.stride;
  let p3 = find_prediction "cycle-carried site" t 3 in
  Alcotest.(check bool) "cycle-carried index refused" true
    (p3.SP.Predict.verdict = SP.Predict.Unknown)

(* --- the degenerate-plan lint -------------------------------------------- *)

let test_degenerate_plan_lint () =
  let code = [| B.Aload 0; getfield ~site:0; B.Pop; B.Return |] in
  let warnings reports threshold =
    A.Lint.degenerate_plans ~code ~reports ?inter_stride_threshold:threshold ()
  in
  (* zero prefetch distance re-fetches the anchor's own address *)
  let zero = warnings [ direct_report ~plan_distance:0 ~stride:16 ] None in
  expect_checker "zero distance" "degenerate-plan" zero;
  List.iter
    (fun (d : A.Diag.t) ->
      Alcotest.(check bool) "warning, not error" true
        (d.A.Diag.severity = A.Diag.Warning))
    zero;
  (* negative distance against a positive detected stride *)
  expect_checker "negative distance" "degenerate-plan"
    (warnings [ direct_report ~plan_distance:(-16) ~stride:16 ] None);
  (* ...but a genuine descending walk is fine *)
  Alcotest.(check int) "descending walk accepted" 0
    (List.length
       (warnings [ direct_report ~plan_distance:(-16) ~stride:(-16) ] None));
  (* an inter stride at or below the profitability threshold must not
     have survived into a direct-prefetch plan *)
  expect_checker "stride under threshold" "degenerate-plan"
    (warnings [ direct_report ~plan_distance:16 ~stride:16 ] (Some 16));
  (* clean plan: sensible distance, stride above the threshold *)
  Alcotest.(check int) "clean plan" 0
    (List.length (warnings [ direct_report ~plan_distance:16 ~stride:16 ] (Some 8)));
  (* the composing driver threads the threshold through *)
  let m = meth [ B.Aload 0; getfield ~site:0; B.Pop; B.Return ] in
  expect_checker "via check_method" "degenerate-plan"
    (A.Check.check_method ~program:(program_of m)
       ~reports:[ direct_report ~plan_distance:16 ~stride:16 ]
       ~scheduling_distance:1 ~inter_stride_threshold:16 m)

(* --- the prediction-desync fuzz axis ------------------------------------- *)

let test_prediction_desync_injection () =
  (* the injected miscompile is visible in program output, but only on
     rewriting non-inspect tiers — every cell of the ordinary matrix runs
     at the inspect tier, so only the prediction crosscheck can see it *)
  let _, verdict =
    Fuzz.Driver.check_seed
      ~tweak_prefetch:(fun o ->
        { o with SP.Options.fault_prediction_desync = true })
      ~seed:1 ~max_size:8 ()
  in
  match verdict with
  | Fuzz.Oracle.Fail (Fuzz.Oracle.Prediction_divergence { tier; _ }) ->
      Alcotest.(check bool) "names a non-inspect tier" true
        (tier = "static" || tier = "hybrid")
  | Fuzz.Oracle.Fail f ->
      Alcotest.failf "wrong failure class: %s" (Fuzz.Oracle.describe f)
  | Fuzz.Oracle.Pass _ ->
      Alcotest.fail "prediction desync went undetected"

let suite =
  [
    ("typestate: structural errors", `Quick, test_typestate_structural);
    ("typestate: value-kind errors", `Quick, test_typestate_value_kinds);
    ( "typestate: reg use-before-def",
      `Quick,
      test_typestate_reg_use_before_def );
    ( "typestate: accepts frontend output",
      `Quick,
      test_typestate_accepts_frontend_output );
    ("spec-safety: def-use diamond", `Quick, test_spec_def_use_diamond);
    ("spec-safety: guard bypass", `Quick, test_guard_dominance_bypass);
    ("spec-safety: splice purity", `Quick, test_splice_purity_interrupted);
    ("lint: redundant prefetch", `Quick, test_redundant_prefetch);
    ("lint: dead spec reg", `Quick, test_dead_spec_reg);
    ("lint: plan consistency", `Quick, test_plan_consistency);
    ("lint: guard required", `Quick, test_guard_required);
    ("lint: degenerate plans", `Quick, test_degenerate_plan_lint);
    ("addralg: value lattice", `Quick, test_addralg_value_lattice);
    ("addralg: nested loops", `Quick, test_addralg_nested_loops);
    ( "addralg: diamond loses affinity",
      `Quick,
      test_addralg_diamond_loses_affinity );
    ("addralg: irreducible entry", `Quick, test_addralg_irreducible_entry);
    ( "wiring: prediction desync caught by the crosscheck",
      `Slow,
      test_prediction_desync_injection );
    ( "check: typestate gates the stack",
      `Quick,
      test_check_method_gates_on_typestate );
    ( "wiring: transformed workload lint-clean",
      `Quick,
      test_transformed_workload_is_lint_clean );
    ("wiring: verify-each-pass mode", `Quick, test_verify_each_pass_mode);
    ( "wiring: oracle lint cell catches injection",
      `Slow,
      test_oracle_lint_cell_catches_injection );
    ("wiring: fuzz sample lint-clean", `Slow, test_fuzz_sample_is_lint_clean);
  ]
