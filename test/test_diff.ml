(* The differential-diagnosis engine (lib/diff): the blame join's
   identity and conservation laws, the planted-regression attribution
   contract, the snapshot round trips (spf_diff/v1, spf_prof/v1, the
   bench report's compact blame payload), the injected desync self-test,
   and the axis bisector's replay algebra on synthetic cycle
   functions. *)

module J = Telemetry.Json
module RD = Diff.Rundata
module B = Diff.Blame
module Bi = Diff.Bisect
module O = Strideprefetch.Options

let all_workloads = Workloads.Specjvm.all @ Workloads.Javagrande.all

let find_workload name =
  List.find (fun (w : Workloads.Workload.t) -> w.name = name) all_workloads

let profiled_run ?(opts = O.default) ?(mode = O.Inter_intra) name =
  Workloads.Harness.run ~opts ~profile:true ~mode
    ~machine:Memsim.Config.pentium4 (find_workload name)

let snapshot ?opts ?mode name =
  let config =
    Bi.config_strings ~workload:name
      (match mode with
      | Some O.Off -> { Bi.default_config with Bi.mode = O.Off }
      | _ -> Bi.default_config)
  in
  match RD.of_run ~config (profiled_run ?opts ?mode name) with
  | Ok rd -> rd
  | Error e -> Alcotest.failf "snapshot failed: %s" e

let check_conservation label bl =
  match B.check bl with
  | None -> ()
  | Some msg -> Alcotest.failf "%s: conservation violated: %s" label msg

(* ------------------------------------------------------------------ *)
(* Identity law: a run diffed against itself blames nothing.           *)

let test_self_diff_empty () =
  let rd = snapshot "Euler" in
  let bl = B.build ~a:rd ~b:rd () in
  Alcotest.(check int) "total delta" 0 bl.B.total_delta;
  Alcotest.(check int) "gc delta" 0 bl.B.gc_delta;
  Array.iter (fun d -> Alcotest.(check int) "bin delta" 0 d) bl.B.bin_deltas;
  List.iter
    (fun (d : B.loop_delta) -> Alcotest.(check int) "loop delta" 0 d.d_delta)
    bl.B.loops;
  Alcotest.(check bool) "no provenance changes" true (bl.B.provenance = []);
  check_conservation "self diff" bl

(* A real two-sided diff (inter+intra vs off) holds the law and renders
   deterministically. *)
let test_real_diff_deterministic () =
  let a = snapshot ~mode:O.Off "Euler" and b = snapshot "Euler" in
  let bl1 = B.build ~a ~b () and bl2 = B.build ~a ~b () in
  check_conservation "off vs inter+intra" bl1;
  Alcotest.(check int)
    "delta is the cycle difference"
    (b.RD.cycles - a.RD.cycles)
    bl1.B.total_delta;
  Alcotest.(check string)
    "render is deterministic" (B.render bl1) (B.render bl2);
  (* The blame JSON is well-formed. *)
  match J.parse (J.to_string (B.to_json bl1)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "blame JSON does not re-parse: %s" e

(* ------------------------------------------------------------------ *)
(* Attribution contract: a planted single-loop perturbation is named
   top-1, with the right dominant bin.                                 *)

let test_planted_loop_blamed () =
  let rd = snapshot "Euler" in
  let mem_idx =
    match List.mapi (fun i n -> (n, i)) RD.bin_names |> List.assoc_opt "mem" with
    | Some i -> i
    | None -> Alcotest.fail "no mem bin"
  in
  (* Perturb the hottest loop by +10% of its cycles, charged to mem. *)
  let victim =
    List.fold_left
      (fun (best : RD.loop) (l : RD.loop) ->
        if l.lr_total > best.lr_total then l else best)
      (List.hd rd.RD.loops) rd.RD.loops
  in
  let d = (victim.lr_total / 10) + 1 in
  let bump (l : RD.loop) =
    if (l.lr_method, l.lr_loop) = (victim.lr_method, victim.lr_loop) then begin
      let bins = Array.copy l.lr_bins in
      bins.(mem_idx) <- bins.(mem_idx) + d;
      { l with lr_bins = bins; lr_total = l.lr_total + d }
    end
    else l
  in
  let totals = Array.copy rd.RD.totals in
  totals.(mem_idx) <- totals.(mem_idx) + d;
  let perturbed =
    {
      rd with
      RD.cycles = rd.RD.cycles + d;
      totals;
      loops = List.map bump rd.RD.loops;
    }
  in
  let bl = B.build ~a:rd ~b:perturbed () in
  check_conservation "planted" bl;
  Alcotest.(check int) "total delta is the plant" d bl.B.total_delta;
  match B.top_loop bl with
  | None -> Alcotest.fail "no top loop"
  | Some top ->
      Alcotest.(check string) "top-1 method" victim.lr_method top.B.d_method;
      Alcotest.(check int) "top-1 loop" victim.lr_loop top.B.d_loop;
      Alcotest.(check int) "top-1 delta" d top.B.d_delta;
      Alcotest.(check int) "charged to mem" d top.B.d_bins.(mem_idx)

(* The desync injection must make the conservation check fail — the
   self-test that the check can catch a corrupted join. *)
let test_fault_desync_caught () =
  let rd = snapshot "Euler" in
  let bl = B.build ~fault_desync:true ~a:rd ~b:rd () in
  match B.check bl with
  | Some _ -> ()
  | None -> Alcotest.fail "injected desync not reported"

(* ------------------------------------------------------------------ *)
(* Round trips.                                                        *)

let test_snapshot_round_trip () =
  let rd = snapshot "Euler" in
  match J.parse (J.to_string (RD.to_json rd)) with
  | Error e -> Alcotest.failf "snapshot does not re-parse: %s" e
  | Ok v -> (
      match RD.of_json v with
      | Error e -> Alcotest.failf "snapshot rejected: %s" e
      | Ok rd' ->
          Alcotest.(check bool) "snapshot round-trips exactly" true (rd = rd'))

let test_prof_report_ingest () =
  let r = profiled_run "Euler" in
  let rep = Option.get r.Workloads.Harness.profile in
  match RD.of_json (Profile.Report.to_json rep) with
  | Error e -> Alcotest.failf "spf_prof/v1 rejected: %s" e
  | Ok rd ->
      Alcotest.(check int) "cycles carried over" rep.Profile.Report.cycles
        rd.RD.cycles;
      Alcotest.(check bool) "config unknown" true
        (rd.RD.config = RD.unknown_config);
      Alcotest.(check int) "all loops carried over"
        (List.length rep.Profile.Report.loops)
        (List.length rd.RD.loops);
      (* A prof-report snapshot still self-diffs to nothing. *)
      let bl = B.build ~a:rd ~b:rd () in
      Alcotest.(check int) "self diff empty" 0 bl.B.total_delta;
      check_conservation "prof ingest" bl

let test_bench_blame_ingest () =
  let rd = snapshot "Euler" in
  let loop_json (l : RD.loop) =
    J.Obj
      [
        ("method", J.Str l.lr_method);
        ("loop", J.Int l.lr_loop);
        ("depth", J.Int l.lr_depth);
        ("actions", J.Int l.lr_actions);
        ( "bins",
          J.Obj (List.mapi (fun i n -> (n, J.Int l.lr_bins.(i))) RD.bin_names)
        );
        ("total", J.Int l.lr_total);
      ]
  in
  let payload =
    J.Obj
      [
        ("gc_cycles", J.Int rd.RD.gc_cycles);
        ("loops", J.List (List.map loop_json rd.RD.loops));
      ]
  in
  (match
     RD.of_bench_blame ~config:rd.RD.config ~cycles:rd.RD.cycles payload
   with
  | Error e -> Alcotest.failf "bench blame rejected: %s" e
  | Ok rd' ->
      Alcotest.(check bool) "totals reconstructed from loops" true
        (rd.RD.totals = rd'.RD.totals);
      let bl = B.build ~a:rd ~b:rd' () in
      Alcotest.(check int) "diff vs the embedding is empty" 0 bl.B.total_delta;
      check_conservation "bench blame" bl);
  match RD.of_bench_blame ~config:rd.RD.config ~cycles:0 (J.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "payload without loops accepted"

(* ------------------------------------------------------------------ *)
(* The axis bisector, on synthetic replay functions (pure, no VM).     *)

let axis = Alcotest.testable (Fmt.of_to_string Bi.axis_name) ( = )

let test_bisect_single_axis () =
  let a = Bi.default_config in
  let b = { a with Bi.mode = O.Off } in
  let replay (c : Bi.config) = if c.Bi.mode = O.Off then 2000 else 1000 in
  let o = Bi.run ~replay ~a ~b in
  Alcotest.(check (list axis)) "responsible" [ Bi.Mode ] o.Bi.responsible;
  Alcotest.(check bool) "exact" true o.Bi.exact;
  Alcotest.(check int) "a single differing axis needs no probe" 2 o.Bi.replays

let test_bisect_planted_among_neutral () =
  let a = Bi.default_config in
  let b = { a with Bi.mode = O.Off; engine = Vm.Interp.Switch } in
  (* The engine axis is cycle-neutral (the engines' contract); only the
     mode moves cycles. *)
  let replay (c : Bi.config) = if c.Bi.mode = O.Off then 2000 else 1000 in
  let o = Bi.run ~replay ~a ~b in
  Alcotest.(check (list axis))
    "candidates in canonical order" [ Bi.Mode; Bi.Engine ] o.Bi.candidates;
  Alcotest.(check (list axis)) "mode blamed" [ Bi.Mode ] o.Bi.responsible;
  Alcotest.(check bool) "exact" true o.Bi.exact;
  Alcotest.(check int) "early stop: 3 replays" 3 o.Bi.replays

let test_bisect_pure_interaction () =
  let a = Bi.default_config in
  let b = { a with Bi.mode = O.Off; prediction = O.Hybrid } in
  let replay (c : Bi.config) =
    if c.Bi.mode = O.Off && c.Bi.prediction = O.Hybrid then 1500 else 1000
  in
  let o = Bi.run ~replay ~a ~b in
  Alcotest.(check (list axis))
    "no single flip moves: whole candidate set"
    [ Bi.Mode; Bi.Prediction ] o.Bi.responsible;
  Alcotest.(check bool) "exact (flipping all is B)" true o.Bi.exact

let test_bisect_joint_verification () =
  let a = Bi.default_config in
  let b = { a with Bi.mode = O.Off; threshold = Some 64 } in
  let replay (c : Bi.config) =
    1000
    + (if c.Bi.mode = O.Off then 300 else 0)
    + if c.Bi.threshold = Some 64 then 200 else 0
  in
  let o = Bi.run ~replay ~a ~b in
  Alcotest.(check (list axis))
    "both movers blamed" [ Bi.Mode; Bi.Threshold ] o.Bi.responsible;
  Alcotest.(check bool) "joint flip verified against B" true o.Bi.exact;
  (* A, B, two single-axis probes, one joint verification. *)
  Alcotest.(check int) "replays" 5 o.Bi.replays

let test_bisect_axis_names () =
  List.iter
    (fun ax ->
      match Bi.axis_of_name (Bi.axis_name ax) with
      | Some ax' -> Alcotest.check axis "name round trip" ax ax'
      | None -> Alcotest.failf "axis %s unparsed" (Bi.axis_name ax))
    Bi.all_axes;
  (* The hw axis compares resolved specs: [None] (machine default) and
     the machine's own model spelled explicitly do not differ. *)
  let a = Bi.default_config in
  let b = { a with Bi.hw = Some Memsim.Config.default_stream } in
  Alcotest.(check (list axis)) "resolved hw equal" [] (Bi.differing ~a ~b)

let suite =
  [
    ("blame: self diff is empty", `Slow, test_self_diff_empty);
    ( "blame: real twin diff conserves and renders deterministically",
      `Slow, test_real_diff_deterministic );
    ("blame: planted loop perturbation named top-1", `Slow,
     test_planted_loop_blamed);
    ("blame: injected desync breaks conservation", `Slow,
     test_fault_desync_caught);
    ("rundata: spf_diff/v1 round trip", `Slow, test_snapshot_round_trip);
    ("rundata: spf_prof/v1 ingest", `Slow, test_prof_report_ingest);
    ("rundata: bench blame payload ingest", `Slow, test_bench_blame_ingest);
    ("bisect: single differing axis", `Quick, test_bisect_single_axis);
    ("bisect: planted axis among neutral in 3 replays", `Quick,
     test_bisect_planted_among_neutral);
    ("bisect: pure interaction blames the set", `Quick,
     test_bisect_pure_interaction);
    ("bisect: joint verification of movers", `Quick,
     test_bisect_joint_verification);
    ("bisect: axis names and resolved hw", `Quick, test_bisect_axis_names);
  ]
