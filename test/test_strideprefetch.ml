(* Tests for the paper's algorithm: stride detection, LDG construction,
   object inspection, profitability, code generation, and the whole pass. *)

module SP = Strideprefetch
module B = Vm.Bytecode
module C = Vm.Classfile

let opts = SP.Options.default

(* --- options ------------------------------------------------------------- *)

let test_options_defaults_match_paper () =
  Alcotest.(check int) "20 inspected iterations" 20 opts.inspect_iterations;
  Alcotest.(check (float 1e-9)) "75% majority" 0.75 opts.majority;
  Alcotest.(check int) "scheduling distance 1" 1 opts.scheduling_distance;
  Alcotest.(check bool) "defaults validate" true
    (SP.Options.validate opts = Ok ())

let test_options_validation () =
  Alcotest.(check bool) "bad majority" true
    (Result.is_error (SP.Options.validate { opts with majority = 1.5 }));
  Alcotest.(check bool) "bad iterations" true
    (Result.is_error (SP.Options.validate { opts with inspect_iterations = 1 }))

let test_options_guarded_choice () =
  (* the paper used guarded loads on the Pentium 4 (64 DTLB entries) *)
  Alcotest.(check bool) "P4 guarded" true
    (SP.Options.use_guarded opts Memsim.Config.pentium4);
  Alcotest.(check bool) "Athlon hardware" false
    (SP.Options.use_guarded opts Memsim.Config.athlon_mp)

(* --- stride detection ---------------------------------------------------- *)

let test_dominant_majority_boundary () =
  (* 16 samples: 12 matching = exactly 75% -> accepted; 11 -> rejected *)
  let samples k = List.init 16 (fun i -> if i < k then 60 else 4 + i) in
  (match SP.Stride.dominant ~opts (samples 12) with
  | Some p ->
      Alcotest.(check int) "stride" 60 p.stride;
      Alcotest.(check int) "matched" 12 p.matched
  | None -> Alcotest.fail "75% must be accepted");
  Alcotest.(check bool) "below threshold rejected" true
    (SP.Stride.dominant ~opts (samples 11) = None)

let test_dominant_min_samples () =
  Alcotest.(check bool) "too few samples" true
    (SP.Stride.dominant ~opts [ 8; 8; 8 ] = None)

let test_inter_pattern () =
  let records = List.init 10 (fun i -> (i, 1000 + (i * 60))) in
  match SP.Stride.inter ~opts records with
  | Some p -> Alcotest.(check int) "constant stride" 60 p.stride
  | None -> Alcotest.fail "expected a pattern"

let test_inter_invariant () =
  let records = List.init 10 (fun i -> (i, 1000)) in
  match SP.Stride.inter ~opts records with
  | Some p -> Alcotest.(check bool) "invariant" true (SP.Stride.is_invariant p)
  | None -> Alcotest.fail "expected the invariant pattern"

let test_inter_irregular () =
  let addrs = [ 10; 500; 7; 2000; 90; 4; 777; 31; 5; 60000 ] in
  let records = List.mapi (fun i a -> (i, a)) addrs in
  Alcotest.(check bool) "no pattern in noise" true
    (SP.Stride.inter ~opts records = None)

let test_intra_pattern () =
  (* anchor at X_i, other at X_i + 28, across iterations; the anchors
     themselves are irregular *)
  let bases = [ 5000; 900; 77777; 1234; 870; 444444; 91; 5555 ] in
  let anchor = List.mapi (fun i b -> (i, b)) bases in
  let other = List.mapi (fun i b -> (i, b + 28)) bases in
  match SP.Stride.intra ~opts ~anchor ~other with
  | Some p -> Alcotest.(check int) "intra stride" 28 p.stride
  | None -> Alcotest.fail "expected intra pattern"

let test_intra_uses_first_execution_per_iteration () =
  (* second executions within an iteration must not pollute the pairing *)
  let anchor =
    List.concat_map (fun i -> [ (i, 1000 * i); (i, 1000 * i + 4) ])
      (List.init 8 Fun.id)
  in
  let other = List.init 8 (fun i -> (i, (1000 * i) + 16)) in
  match SP.Stride.intra ~opts ~anchor ~other with
  | Some p -> Alcotest.(check int) "paired with first" 16 p.stride
  | None -> Alcotest.fail "expected intra pattern"

let test_intra_negative_stride () =
  let bases = List.init 8 (fun i -> 10_000 + (i * 997)) in
  let anchor = List.mapi (fun i b -> (i, b)) bases in
  let other = List.mapi (fun i b -> (i, b - 200)) bases in
  match SP.Stride.intra ~opts ~anchor ~other with
  | Some p -> Alcotest.(check int) "negative stride" (-200) p.stride
  | None -> Alcotest.fail "expected intra pattern"

let prop_dominant_respects_majority =
  QCheck.Test.make ~name:"dominant stride really is the mode" ~count:100
    QCheck.(list_of_size Gen.(4 -- 40) (int_bound 5))
    (fun strides ->
      match SP.Stride.dominant ~opts strides with
      | None -> true
      | Some p ->
          let count v = List.length (List.filter (( = ) v) strides) in
          count p.stride = p.matched
          && List.for_all (fun s -> count s <= p.matched) strides
          && float_of_int p.matched
             >= opts.majority *. float_of_int (List.length strides))

(* --- profitability ------------------------------------------------------- *)

let test_inter_stride_ok_boundary () =
  Alcotest.(check bool) "half line rejected" false
    (SP.Profitability.inter_stride_ok ~line_bytes:128 64);
  Alcotest.(check bool) "above half accepted" true
    (SP.Profitability.inter_stride_ok ~line_bytes:128 65);
  Alcotest.(check bool) "negative strides count by magnitude" true
    (SP.Profitability.inter_stride_ok ~line_bytes:128 (-80));
  Alcotest.(check bool) "zero rejected" false
    (SP.Profitability.inter_stride_ok ~line_bytes:128 0)

let test_dedup_offsets () =
  Alcotest.(check (list int)) "close offsets collapse" [ 8 ]
    (SP.Profitability.dedup_offsets ~line_bytes:128 [ 8; 24; 44; 64 ]);
  Alcotest.(check (list int)) "far offsets survive" [ 8; 80; 200 ]
    (SP.Profitability.dedup_offsets ~line_bytes:128 [ 8; 80; 200 ]);
  Alcotest.(check (list int)) "first wins" [ 8 ]
    (SP.Profitability.dedup_offsets ~line_bytes:128 [ 8; 10 ])

let prop_dedup_pairwise_far =
  QCheck.Test.make ~name:"dedup keeps only pairwise-far offsets" ~count:100
    QCheck.(list_of_size Gen.(0 -- 20) (int_bound 500))
    (fun offsets ->
      let kept = SP.Profitability.dedup_offsets ~line_bytes:128 offsets in
      List.for_all
        (fun a ->
          List.for_all (fun b -> a = b || abs (a - b) >= 64) kept)
        kept
      && List.for_all (fun k -> List.mem k offsets) kept)

let test_has_dependents () =
  let code = [| B.Iconst 1; B.Pop; B.Return |] in
  Alcotest.(check bool) "followed by pop" false
    (SP.Profitability.has_dependents code ~pc:0);
  Alcotest.(check bool) "followed by use" true
    (SP.Profitability.has_dependents [| B.Iconst 1; B.Print; B.Return |] ~pc:0)

(* --- load dependence graph ----------------------------------------------- *)

(* the findInMemory-style chase: p.v[i].f *)
let chase_infos () =
  let code =
    [|
      (* 0 *) B.Aload 0;
      (* 1 *) B.Getfield { site = 0; offset = 8; name = "v"; is_ref = true };
      (* 2 *) B.Iload 1;
      (* 3 *) B.Aaload { len_site = 1; elem_site = 2 };
      (* 4 *) B.Getfield { site = 3; offset = 12; name = "f"; is_ref = false };
      (* 5 *) B.Ireturn;
    |]
  in
  Jit.Stack_model.analyze code ~arity:2
    ~callee_arity:(fun _ -> 0)
    ~callee_returns:(fun _ -> false)

let test_ldg_edges () =
  let ldg = SP.Ldg.build (chase_infos ()) ~sites:[ 0; 1; 2; 3 ] in
  Alcotest.(check (list int)) "v feeds len+elem" [ 1; 2 ] (SP.Ldg.succs ldg 0);
  Alcotest.(check (list int)) "elem feeds f" [ 3 ] (SP.Ldg.succs ldg 2);
  Alcotest.(check (list int)) "f's pred" [ 2 ] (SP.Ldg.preds ldg 3);
  Alcotest.(check int) "edge count" 3 (SP.Ldg.n_edges ldg)

let test_ldg_restriction () =
  (* excluding the element site cuts the chain *)
  let ldg = SP.Ldg.build (chase_infos ()) ~sites:[ 0; 3 ] in
  Alcotest.(check (list int)) "no edge without the middleman" []
    (SP.Ldg.succs ldg 0);
  Alcotest.(check bool) "membership" false (SP.Ldg.mem ldg 2)

let test_ldg_intra_reachability () =
  let ldg = SP.Ldg.build (chase_infos ()) ~sites:[ 0; 1; 2; 3 ] in
  let has_intra site = site = 3 in
  Alcotest.(check (list int)) "transitive intra set" [ 3 ]
    (SP.Ldg.reachable_by_intra ldg ~from:2 has_intra)

let test_ldg_dot () =
  let ldg = SP.Ldg.build (chase_infos ()) ~sites:[ 0; 1; 2; 3 ] in
  let dot = SP.Ldg.to_dot ldg ~labels:(Printf.sprintf "L%d") in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "edge rendered" true (contains dot "L2 -> L3")

(* --- object inspection --------------------------------------------------- *)

(* Build an interpreter with a populated heap and hand the kernel method to
   the inspector directly. *)
let jess_source =
  {|
class Vec {
  Tok[] v;
  int ptr;
  Vec(int cap) { v = new Tok[cap]; ptr = 0; }
  void add(Tok t) { v[ptr] = t; ptr = ptr + 1; }
}
class Tok {
  int[] facts;
  int size;
  Tok(int a) {
    facts = new int[4];
    facts[0] = a;
    size = 1;
  }
}
class Kernel {
  static int scan(Vec tv) {
    int acc = 0;
    for (int i = 0; i < tv.ptr; i = i + 1) {
      Tok tmp = tv.v[i];
      acc = acc + tmp.facts[0] + tmp.size;
    }
    return acc;
  }
  static void main() {
    Vec tv = new Vec(100);
    for (int i = 0; i < 80; i = i + 1) { tv.add(new Tok(i)); }
    print(Kernel.scan(tv));
  }
}
|}

(* Run main with a huge hot threshold (nothing compiles), then inspect
   [Kernel.scan] with the Vec object as the actual argument. *)
let setup_jess () =
  let program = Helpers.compile jess_source in
  let interp =
    Helpers.run_program ~hot_threshold:1_000_000 program
  in
  let meth = Option.get (C.find_method program "Kernel.scan") in
  (* find the Vec object: the only one of class id 0..; look up by class *)
  let heap = Vm.Interp.heap interp in
  let vec_class =
    (Option.get (C.find_class program "Vec")).C.class_id
  in
  let vec = ref None in
  Vm.Heap.iter_ids_in_address_order heap (fun id ->
      if Vm.Heap.class_id_of heap id = Some vec_class then vec := Some id);
  (interp, meth, Option.get !vec)

let inspect interp (meth : C.method_info) args =
  let cfg = Jit.Cfg.build meth.code in
  let forest = Jit.Loops.analyze cfg in
  let target = List.hd (Jit.Loops.postorder forest) in
  SP.Inspection.inspect
    ~program:(Vm.Interp.program interp)
    ~heap:(Vm.Interp.heap interp)
    ~globals:(Vm.Interp.global interp)
    ~opts ~cfg ~forest ~target ~meth ~args

let test_inspection_runs_twenty_iterations () =
  let interp, meth, vec = setup_jess () in
  let result = inspect interp meth [| Vm.Value.Ref vec |] in
  Alcotest.(check int) "budgeted iterations" opts.inspect_iterations
    result.iterations;
  Alcotest.(check bool) "did not exit naturally" false result.natural_exit

let test_inspection_discovers_strides () =
  let interp, meth, vec = setup_jess () in
  let result = inspect interp meth [| Vm.Value.Ref vec |] in
  (* the Tok objects are co-allocated: tmp's getfields must show constant
     inter-iteration strides; the element load of tv.v strides by 4 *)
  let strides =
    Array.to_list result.per_site
    |> List.filter_map (fun records -> SP.Stride.inter ~opts records)
    |> List.map (fun (p : SP.Stride.pattern) -> p.stride)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "element stride 4 present" true (List.mem 4 strides);
  Alcotest.(check bool) "some object-sized stride present" true
    (List.exists (fun s -> s > 16) strides)

let test_inspection_matches_real_execution () =
  (* addresses gathered by inspection = addresses of the real run *)
  let interp, meth, vec = setup_jess () in
  let inspected = inspect interp meth [| Vm.Value.Ref vec |] in
  let real : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
  Vm.Interp.set_load_observer interp (fun ~method_id ~site ~addr ->
      if method_id = meth.C.method_id then
        Hashtbl.replace real site
          ((0, addr) :: Option.value ~default:[] (Hashtbl.find_opt real site)));
  ignore (Vm.Interp.call interp meth [| Vm.Value.Ref vec |]);
  Array.iteri
    (fun site records ->
      match records with
      | [] -> ()
      | _ ->
          let inspected_addrs = List.map snd records in
          let real_addrs =
            Option.value ~default:[] (Hashtbl.find_opt real site)
            |> List.rev_map snd
          in
          (* the inspected trace must be a prefix of the real trace *)
          let rec is_prefix a b =
            match (a, b) with
            | [], _ -> true
            | x :: xs, y :: ys -> x = y && is_prefix xs ys
            | _ :: _, [] -> false
          in
          if not (is_prefix inspected_addrs real_addrs) then
            Alcotest.failf "site %d: inspected addresses diverge" site)
    inspected.per_site

let test_inspection_is_side_effect_free () =
  let interp, meth, vec = setup_jess () in
  let heap = Vm.Interp.heap interp in
  let objects_before = Vm.Heap.live_objects heap in
  let bytes_before = Vm.Heap.used_bytes heap in
  (* snapshot some reachable state *)
  let vec_ptr = Vm.Heap.get_field heap vec 1 in
  ignore (inspect interp meth [| Vm.Value.Ref vec |]);
  Alcotest.(check int) "no new objects" objects_before
    (Vm.Heap.live_objects heap);
  Alcotest.(check int) "no heap growth" bytes_before (Vm.Heap.used_bytes heap);
  Alcotest.(check bool) "fields untouched" true
    (Vm.Heap.get_field heap vec 1 = vec_ptr)

let test_inspection_side_effect_free_with_stores () =
  (* a kernel that stores into the heap on every iteration *)
  let source =
    {|
class Cell { int v; Cell(int x) { v = x; } }
class K {
  static int bump(Cell c, int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      c.v = c.v + 1;
      acc = acc + c.v;
    }
    return acc;
  }
  static void main() {
    Cell c = new Cell(5);
    print(K.bump(c, 3));
  }
}
|}
  in
  let program = Helpers.compile source in
  let interp = Helpers.run_program ~hot_threshold:1_000_000 program in
  let meth = Option.get (C.find_method program "K.bump") in
  let heap = Vm.Interp.heap interp in
  let cell = ref None in
  Vm.Heap.iter_ids_in_address_order heap (fun id ->
      if Vm.Heap.class_id_of heap id <> None then cell := Some id);
  let cell = Option.get !cell in
  let before = Vm.Heap.get_field heap cell 0 in
  ignore (inspect interp meth [| Vm.Value.Ref cell; Vm.Value.Int 50 |]);
  Alcotest.(check bool) "store stayed in the write log" true
    (Vm.Heap.get_field heap cell 0 = before)

let test_inspection_write_log_read_back () =
  (* within the inspection, stores must be visible to later loads: the
     accumulated value equals the real execution's *)
  let source =
    {|
class Cell { int v; Cell(int x) { v = x; } }
class K {
  static int bump(Cell c, int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      c.v = c.v + 1;
      acc = acc + c.v;
    }
    return acc;
  }
  static void main() { print(0); }
}
|}
  in
  let program = Helpers.compile source in
  let interp = Helpers.run_program ~hot_threshold:1_000_000 program in
  let meth = Option.get (C.find_method program "K.bump") in
  (* allocate a cell by hand *)
  let heap = Vm.Interp.heap interp in
  let cell_class = Option.get (C.find_class program "Cell") in
  let cell = Vm.Heap.alloc_object heap cell_class in
  Vm.Heap.set_field heap cell 0 (Vm.Value.Int 5);
  let result = inspect interp meth [| Vm.Value.Ref cell; Vm.Value.Int 50 |] in
  (* the loop exercises c.v (site for getfield v): iterations should all
     record the same address (loop-invariant) *)
  let nonempty =
    Array.to_list result.per_site |> List.filter (fun r -> r <> [])
  in
  Alcotest.(check bool) "loads recorded" true (nonempty <> []);
  Alcotest.(check bool) "ran full budget" true
    (result.iterations = opts.inspect_iterations)

let test_inspection_small_trip_detection () =
  let source =
    {|
class K {
  static int tiny(int[] a) {
    int acc = 0;
    for (int i = 0; i < 3; i = i + 1) { acc = acc + a[i]; }
    return acc;
  }
  static void main() {
    int[] a = new int[3];
    print(K.tiny(a));
  }
}
|}
  in
  let program = Helpers.compile source in
  let interp = Helpers.run_program ~hot_threshold:1_000_000 program in
  let meth = Option.get (C.find_method program "K.tiny") in
  let heap = Vm.Interp.heap interp in
  let arr = ref None in
  Vm.Heap.iter_ids_in_address_order heap (fun id ->
      if Vm.Heap.class_id_of heap id = None then arr := Some id);
  let result = inspect interp meth [| Vm.Value.Ref (Option.get !arr) |] in
  Alcotest.(check bool) "natural exit" true result.natural_exit;
  Alcotest.(check int) "three iterations" 3 result.iterations

let test_inspection_unknown_args () =
  (* inspecting with unknown (null) arguments must not blow up and must
     produce no addresses *)
  let interp, meth, _vec = setup_jess () in
  let result = inspect interp meth [| Vm.Value.Null |] in
  Alcotest.(check bool) "no records through null" true
    (Array.for_all (fun r -> r = []) result.per_site)

let test_inspection_step_budget () =
  let interp, meth, vec = setup_jess () in
  let tight = { opts with SP.Options.max_inspect_steps = 120 } in
  let cfg = Jit.Cfg.build meth.C.code in
  let forest = Jit.Loops.analyze cfg in
  let target = List.hd (Jit.Loops.postorder forest) in
  let result =
    SP.Inspection.inspect
      ~program:(Vm.Interp.program interp)
      ~heap:(Vm.Interp.heap interp)
      ~globals:(Vm.Interp.global interp)
      ~opts:tight ~cfg ~forest ~target ~meth
      ~args:[| Vm.Value.Ref vec |]
  in
  Alcotest.(check bool) "stopped within budget" true (result.steps <= 121)

(* --- codegen ------------------------------------------------------------- *)

let test_codegen_apply_retargets () =
  (* splice after instruction 1 inside a loop; the backedge must keep
     pointing at the loop header instruction *)
  let code =
    [|
      (* 0 *) B.Iconst 0;
      (* 1: header *) B.Dup;
      (* 2 *) B.Iconst 10;
      (* 3 *) B.If_icmp (B.Ge, 6);
      (* 4 *) B.Iconst 1;
      (* 5 *) B.Goto 1;
      (* 6 *) B.Return;
    |]
  in
  let plan =
    {
      SP.Codegen.actions =
        [
          {
            SP.Codegen.anchor_site = 0;
            anchor_pc = 1;
            kind = SP.Codegen.Prefetch_direct { distance = 64 };
          };
        ];
      rejected = [];
      regs_used = 0;
    }
  in
  let out = SP.Codegen.apply ~guarded:false code [ plan ] in
  Alcotest.(check int) "one instruction longer" 8 (Array.length out);
  (match out.(2) with
  | B.Prefetch_inter { site = 0; distance = 64 } -> ()
  | i -> Alcotest.failf "expected prefetch at 2, got %s" (B.to_string i));
  (* the backedge: originally Goto 1, the header did not move *)
  (match out.(6) with
  | B.Goto 1 -> ()
  | i -> Alcotest.failf "backedge retarget wrong: %s" (B.to_string i));
  (* the forward branch to 6 must now point at the shifted return *)
  match out.(4) with
  | B.If_icmp (B.Ge, 7) -> ()
  | i -> Alcotest.failf "forward retarget wrong: %s" (B.to_string i)

let test_codegen_deref_splice_shape () =
  let code = [| B.Iconst 0; B.Pop; B.Return |] in
  let plan =
    {
      SP.Codegen.actions =
        [
          {
            SP.Codegen.anchor_site = 2;
            anchor_pc = 0;
            kind =
              SP.Codegen.Prefetch_deref
                {
                  distance = 4;
                  reg = 0;
                  targets =
                    [
                      { SP.Codegen.target_site = 3; offset = 8; via_intra = false };
                      { SP.Codegen.target_site = 4; offset = 80; via_intra = true };
                    ];
                };
          };
        ];
      rejected = [];
      regs_used = 1;
    }
  in
  let out = SP.Codegen.apply ~guarded:true code [ plan ] in
  (* iconst; spec_load; prefetch(+8) hardware; prefetch(+80) guarded; ... *)
  (match out.(1) with
  | B.Spec_load { site = 2; distance = 4; reg = 0 } -> ()
  | i -> Alcotest.failf "expected spec_load, got %s" (B.to_string i));
  (match out.(2) with
  | B.Prefetch_indirect { guarded = false; offset = 8; _ } -> ()
  | i -> Alcotest.failf "deref target must be hardware form: %s" (B.to_string i));
  match out.(3) with
  | B.Prefetch_indirect { guarded = true; offset = 80; _ } -> ()
  | i -> Alcotest.failf "intra target must be guarded: %s" (B.to_string i)

(* --- the full pass ------------------------------------------------------- *)

let quickstart_source =
  {|
class Vec {
  Tok[] v;
  int ptr;
  Vec(int cap) { v = new Tok[cap]; ptr = 0; }
  void add(Tok t) { v[ptr] = t; ptr = ptr + 1; }
  void removeAt(int i) { ptr = ptr - 1; v[i] = v[ptr]; }
}
class Tok {
  int[] facts;
  int size;
  Tok(int a) { facts = new int[40]; facts[0] = a; size = 1; }
}
class Kernel {
  int scan(Vec tv) {
    int acc = 0;
    for (int i = 0; i < tv.ptr; i = i + 1) {
      Tok tmp = tv.v[i];
      acc = acc + tmp.facts[0] + tmp.size;
    }
    return acc;
  }
  static void main() {
    Vec tv = new Vec(400);
    for (int i = 0; i < 300; i = i + 1) { tv.add(new Tok(i)); }
    int seed = 12345;
    for (int i = 0; i < 900; i = i + 1) {
      seed = (seed * 1103515245 + 12345) % 1048576;
      if (seed < 0) { seed = 0 - seed; }
      tv.removeAt(seed % tv.ptr);
      tv.add(new Tok(i));
    }
    Kernel k = new Kernel();
    int acc = 0;
    for (int r = 0; r < 6; r = r + 1) { acc = acc + k.scan(tv); }
    print(acc);
  }
}
|}

let run_with_reports mode =
  let program = Helpers.compile quickstart_source in
  let opts = SP.Options.with_mode mode SP.Options.default in
  let interp = Vm.Interp.create Memsim.Config.pentium4 program in
  let reports = ref [] in
  let pipeline =
    Jit.Pipeline.create
      (Jit.Pipeline.standard_passes ()
      @ [
          SP.Pass.make_pass ~opts ~interp
            ~report_sink:(fun r -> reports := !reports @ r)
            ();
        ])
  in
  Vm.Interp.set_compile_hook interp (fun _ m args ->
      Jit.Pipeline.compile pipeline m args);
  ignore (Vm.Interp.run interp);
  (Vm.Interp.output interp, !reports, program)

let test_pass_off_is_noop () =
  let _, reports, program = run_with_reports SP.Options.Off in
  Alcotest.(check int) "no reports" 0 (List.length reports);
  let m = Option.get (C.find_method program "Kernel.scan") in
  Alcotest.(check bool) "no prefetch instructions" true
    (Array.for_all
       (function
         | B.Prefetch_inter _ | B.Spec_load _ | B.Prefetch_indirect _ -> false
         | _ -> true)
       m.C.code)

let test_pass_generates_deref_prefetch () =
  let _, reports, program = run_with_reports SP.Options.Inter_intra in
  let m = Option.get (C.find_method program "Kernel.scan") in
  Alcotest.(check bool) "spec_load spliced" true
    (Array.exists (function B.Spec_load _ -> true | _ -> false) m.C.code);
  Alcotest.(check bool) "pref regs allocated" true (m.C.n_pref_regs > 0);
  let scan_reports =
    List.filter
      (fun (r : SP.Pass.loop_report) -> r.method_name = "Kernel.scan")
      reports
  in
  Alcotest.(check bool) "scan reported" true (scan_reports <> []);
  let report = List.hd scan_reports in
  Alcotest.(check bool) "deref action planned" true
    (List.exists
       (fun (a : SP.Codegen.action) ->
         match a.kind with SP.Codegen.Prefetch_deref _ -> true | _ -> false)
       report.plan.actions)

let test_pass_inter_mode_has_no_spec_load () =
  let _, _, program = run_with_reports SP.Options.Inter in
  let m = Option.get (C.find_method program "Kernel.scan") in
  Alcotest.(check bool) "no spec_load in INTER mode" true
    (Array.for_all (function B.Spec_load _ -> false | _ -> true) m.C.code)

let test_pass_preserves_output () =
  let off, _, _ = run_with_reports SP.Options.Off in
  let inter, _, _ = run_with_reports SP.Options.Inter in
  let both, _, _ = run_with_reports SP.Options.Inter_intra in
  Alcotest.(check string) "INTER output" off inter;
  Alcotest.(check string) "INTER+INTRA output" off both

let test_pass_analyze_only_does_not_rewrite () =
  let program = Helpers.compile quickstart_source in
  let interp = Helpers.run_program ~hot_threshold:1_000_000 program in
  let m = Option.get (C.find_method program "Kernel.scan") in
  let before = Array.copy m.C.code in
  let vec_class = (Option.get (C.find_class program "Vec")).C.class_id in
  let heap = Vm.Interp.heap interp in
  let vec = ref None in
  Vm.Heap.iter_ids_in_address_order heap (fun id ->
      if Vm.Heap.class_id_of heap id = Some vec_class then
        if !vec = None then vec := Some id);
  let kernel = ref None in
  Vm.Heap.iter_ids_in_address_order heap (fun id ->
      match Vm.Heap.class_id_of heap id with
      | Some c
        when c = (Option.get (C.find_class program "Kernel")).C.class_id ->
          kernel := Some id
      | _ -> ());
  let reports =
    SP.Pass.analyze_only ~opts ~interp ~meth:m
      ~args:
        [| Vm.Value.Ref (Option.get !kernel); Vm.Value.Ref (Option.get !vec) |]
      ()
  in
  Alcotest.(check bool) "reports produced" true (reports <> []);
  Alcotest.(check bool) "code unchanged" true (m.C.code = before)

let suite =
  [
    ("options: paper defaults", `Quick, test_options_defaults_match_paper);
    ("options: validation", `Quick, test_options_validation);
    ("options: guarded-load choice per machine", `Quick,
     test_options_guarded_choice);
    ("stride: 75% majority boundary", `Quick, test_dominant_majority_boundary);
    ("stride: minimum samples", `Quick, test_dominant_min_samples);
    ("stride: inter-iteration pattern", `Quick, test_inter_pattern);
    ("stride: loop-invariant detection", `Quick, test_inter_invariant);
    ("stride: noise has no pattern", `Quick, test_inter_irregular);
    ("stride: intra-iteration pattern", `Quick, test_intra_pattern);
    ("stride: intra uses first execution per iteration", `Quick,
     test_intra_uses_first_execution_per_iteration);
    ("stride: negative intra stride", `Quick, test_intra_negative_stride);
    Helpers.qtest prop_dominant_respects_majority;
    ("profitability: half-line rule", `Quick, test_inter_stride_ok_boundary);
    ("profitability: line dedup", `Quick, test_dedup_offsets);
    Helpers.qtest prop_dedup_pairwise_far;
    ("profitability: dependent-instruction check", `Quick, test_has_dependents);
    ("ldg: reference-chasing edges", `Quick, test_ldg_edges);
    ("ldg: restriction to loop sites", `Quick, test_ldg_restriction);
    ("ldg: transitive intra reachability", `Quick, test_ldg_intra_reachability);
    ("ldg: dot rendering", `Quick, test_ldg_dot);
    ("inspection: runs the 20-iteration budget", `Quick,
     test_inspection_runs_twenty_iterations);
    ("inspection: discovers strides", `Quick, test_inspection_discovers_strides);
    ("inspection: addresses match real execution", `Quick,
     test_inspection_matches_real_execution);
    ("inspection: side-effect free", `Quick, test_inspection_is_side_effect_free);
    ("inspection: stores stay in the write log", `Quick,
     test_inspection_side_effect_free_with_stores);
    ("inspection: write log is read back", `Quick,
     test_inspection_write_log_read_back);
    ("inspection: small trip count detected", `Quick,
     test_inspection_small_trip_detection);
    ("inspection: unknown arguments are safe", `Quick,
     test_inspection_unknown_args);
    ("inspection: step budget", `Quick, test_inspection_step_budget);
    ("codegen: splice retargets branches", `Quick, test_codegen_apply_retargets);
    ("codegen: deref splice shape and guarding", `Quick,
     test_codegen_deref_splice_shape);
    ("pass: Off is a no-op", `Quick, test_pass_off_is_noop);
    ("pass: deref prefetch generated end-to-end", `Quick,
     test_pass_generates_deref_prefetch);
    ("pass: INTER mode never uses spec_load", `Quick,
     test_pass_inter_mode_has_no_spec_load);
    ("pass: output preserved across modes", `Quick, test_pass_preserves_output);
    ("pass: analyze_only does not rewrite", `Quick,
     test_pass_analyze_only_does_not_rewrite);
  ]

(* --- inter-procedural object inspection (the Section 3.2 extension) ----- *)

let interproc_opts = { opts with SP.Options.inspect_calls = true }

let inspect_with opts interp (meth : C.method_info) args =
  let cfg = Jit.Cfg.build meth.code in
  let forest = Jit.Loops.analyze cfg in
  let target = List.hd (Jit.Loops.postorder forest) in
  SP.Inspection.inspect
    ~program:(Vm.Interp.program interp)
    ~heap:(Vm.Interp.heap interp)
    ~globals:(Vm.Interp.global interp)
    ~opts ~cfg ~forest ~target ~meth ~args

let callee_effect_source =
  {|
class Box { int bound; Box() { bound = 0; } }
class K {
  static void setBound(Box b, int v) { b.bound = v; }
  static int walk(Box b, int[] xs) {
    K.setBound(b, 50);
    int acc = 0;
    for (int i = 0; i < b.bound; i = i + 1) {
      acc = acc + xs[i % xs.length];
    }
    return acc;
  }
  static void main() {
    Box b = new Box();
    int[] xs = new int[64];
    print(K.walk(b, xs));
  }
}
|}

let setup_callee_effect () =
  let program = Helpers.compile callee_effect_source in
  let interp = Helpers.run_program ~hot_threshold:1_000_000 program in
  let meth = Option.get (C.find_method program "K.walk") in
  let heap = Vm.Interp.heap interp in
  let box = ref None and xs = ref None in
  Vm.Heap.iter_ids_in_address_order heap (fun id ->
      match Vm.Heap.class_id_of heap id with
      | Some _ -> box := Some id
      | None -> xs := Some id);
  (interp, meth, Option.get !box, Option.get !xs)

let test_interproc_callee_effects_visible () =
  let interp, meth, box, xs = setup_callee_effect () in
  let args = [| Vm.Value.Ref box; Vm.Value.Ref xs |] in
  (* flat mode: setBound is skipped, b.bound stays 0 in the write-log view
     (real heap value is 0 after main reset it... the real value is 50
     from the real run; reset it to 0 to make the effect observable) *)
  Vm.Heap.set_field (Vm.Interp.heap interp) box 0 (Vm.Value.Int 0);
  let flat = inspect_with opts interp meth args in
  Alcotest.(check int) "flat: loop never entered (bound unknown-0)" 0
    flat.iterations;
  let inter = inspect_with interproc_opts interp meth args in
  Alcotest.(check int) "inter-procedural: callee store visible"
    opts.inspect_iterations inter.iterations;
  (* and the real heap is still untouched *)
  Alcotest.(check bool) "real heap untouched" true
    (Vm.Heap.get_field (Vm.Interp.heap interp) box 0 = Vm.Value.Int 0)

let ctor_in_loop_source =
  {|
class Pt { int[] coords; Pt(int x) { coords = new int[6]; coords[0] = x; } }
class K {
  static int build(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      Pt p = new Pt(i);
      acc = acc + p.coords[0];
    }
    return acc;
  }
  static void main() { print(K.build(3)); }
}
|}

let test_interproc_constructor_in_loop () =
  let program = Helpers.compile ctor_in_loop_source in
  let interp = Helpers.run_program ~hot_threshold:1_000_000 program in
  let meth = Option.get (C.find_method program "K.build") in
  let args = [| Vm.Value.Int 1000 |] in
  (* flat: the constructor is skipped, p.coords is unknown -> the
     getfield through p records shadow addresses but coords loads miss *)
  let flat = inspect_with opts interp meth args in
  let flat_sites =
    Array.to_list flat.per_site |> List.filter (fun r -> r <> []) |> List.length
  in
  let inter = inspect_with interproc_opts interp meth args in
  let inter_sites =
    Array.to_list inter.per_site
    |> List.filter (fun r -> r <> [])
    |> List.length
  in
  Alcotest.(check bool) "inter-procedural records more sites" true
    (inter_sites > flat_sites);
  (* the freshly allocated objects live in the shadow bump allocator, so
     their loads show constant strides -- discoverable intra/inter
     patterns for allocation-in-loop code *)
  let strided =
    Array.to_list inter.per_site
    |> List.filter_map (fun records -> SP.Stride.inter ~opts records)
    |> List.filter (fun (p : SP.Stride.pattern) ->
           not (SP.Stride.is_invariant p))
  in
  Alcotest.(check bool) "shadow-heap strides discovered" true (strided <> []);
  Alcotest.(check bool) "no real allocation happened" true
    (Vm.Interp.gc_count interp = 0)

let recursion_source =
  {|
class K {
  static int deep(int n) {
    if (n <= 0) { return 0; }
    return 1 + K.deep(n - 1);
  }
  static int drive(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + K.deep(1000); }
    return acc;
  }
  static void main() { print(K.drive(2)); }
}
|}

let test_interproc_recursion_bounded () =
  let program = Helpers.compile recursion_source in
  let interp = Helpers.run_program ~hot_threshold:1_000_000 program in
  let meth = Option.get (C.find_method program "K.drive") in
  let result =
    inspect_with interproc_opts interp meth [| Vm.Value.Int 1000 |]
  in
  (* recursion depth is clamped by max_call_depth and the step budget;
     inspection must terminate and stay within budget *)
  Alcotest.(check bool) "terminates within budget" true
    (result.steps <= interproc_opts.max_inspect_steps + 1)

let interproc_suite =
  [
    ("inspection: callee effects visible inter-procedurally", `Quick,
     test_interproc_callee_effects_visible);
    ("inspection: constructor interpreted in shadow heap", `Quick,
     test_interproc_constructor_in_loop);
    ("inspection: recursion bounded", `Quick, test_interproc_recursion_bounded);
  ]

let suite = suite @ interproc_suite

(* --- phased multiple-stride extension (Wu) ------------------------------- *)

let phased_opts = { opts with SP.Options.enable_phased = true }

let test_phased_detection () =
  (* alternating strides 112 / 272, neither dominant alone *)
  let addrs =
    let rec build addr n acc =
      if n = 0 then List.rev acc
      else
        let step = if n mod 2 = 0 then 112 else 272 in
        build (addr + step) (n - 1) ((20 - n, addr) :: acc)
    in
    build 4096 16 []
  in
  Alcotest.(check bool) "no single pattern" true
    (SP.Stride.inter ~opts addrs = None);
  match SP.Stride.phased ~opts:phased_opts addrs with
  | [ a; b ] ->
      let strides = List.sort compare [ a.SP.Stride.stride; b.SP.Stride.stride ] in
      Alcotest.(check (list int)) "both phases found" [ 112; 272 ] strides
  | l -> Alcotest.failf "expected 2 phases, got %d" (List.length l)

let test_phased_rejects_single_and_noise () =
  let regular = List.init 12 (fun i -> (i, 1000 + (i * 60))) in
  Alcotest.(check bool) "single-stride load is not phased" true
    (SP.Stride.phased ~opts:phased_opts regular = []);
  let noise = List.mapi (fun i a -> (i, a)) [ 3; 999; 17; 40000; 2; 777; 31; 5 ] in
  Alcotest.(check bool) "noise is not phased" true
    (SP.Stride.phased ~opts:phased_opts noise = [])

let phased_workload_source =
  {|
class Obj { int v; int pad0; int pad1; Obj(int x) { v = x; pad0 = 0; pad1 = 0; } }
class K {
  static int scan(Obj[] objs) {
    int acc = 0;
    for (int i = 0; i < objs.length; i = i + 1) {
      acc = acc + objs[i].v;
    }
    return acc;
  }
  static void main() {
    Obj[] objs = new Obj[600];
    for (int i = 0; i < 600; i = i + 1) {
      objs[i] = new Obj(i);
      /* alternating-size garbage between objects: the scan's getfield
         strides alternate between two constants */
      if (i % 2 == 0) { int[] g = new int[20]; g[0] = i; }
      else { int[] g = new int[60]; g[0] = i; }
    }
    int acc = 0;
    for (int r = 0; r < 4; r = r + 1) { acc = (acc + K.scan(objs)) % 65536; }
    print(acc);
  }
}
|}

let run_phased enable =
  let program = Helpers.compile phased_workload_source in
  let o =
    { phased_opts with SP.Options.enable_phased = enable }
  in
  let interp = Vm.Interp.create Memsim.Config.pentium4 program in
  let pipeline =
    Jit.Pipeline.create
      (Jit.Pipeline.standard_passes ()
      @ [ SP.Pass.make_pass ~opts:o ~interp () ])
  in
  Vm.Interp.set_compile_hook interp (fun _ m args ->
      Jit.Pipeline.compile pipeline m args);
  ignore (Vm.Interp.run interp);
  (Vm.Interp.output interp, program)

let test_phased_end_to_end () =
  let out_off, program_off = run_phased false in
  let out_on, program_on = run_phased true in
  Alcotest.(check string) "outputs agree" out_off out_on;
  let has_dynamic program =
    let m = Option.get (C.find_method program "K.scan") in
    Array.exists
      (function B.Prefetch_dynamic _ -> true | _ -> false)
      m.C.code
  in
  Alcotest.(check bool) "no dynamic prefetch when disabled" false
    (has_dynamic program_off);
  Alcotest.(check bool) "dynamic prefetch generated when enabled" true
    (has_dynamic program_on)

let phased_suite =
  [
    ("stride: phased multiple-stride detection", `Quick, test_phased_detection);
    ("stride: phased rejects single-stride and noise", `Quick,
     test_phased_rejects_single_and_noise);
    ("pass: phased dynamic prefetch end-to-end", `Quick, test_phased_end_to_end);
  ]

let suite = suite @ phased_suite

(* --- stride properties: majority boundary, min_samples gate, constant and
   negative traces, phased fraction edges (fuzzing-oracle satellites) ----- *)

let prop_dominant_exact_majority_boundary =
  (* for any sample count, exactly ceil(majority * n) matches is accepted
     and one fewer is rejected *)
  QCheck.Test.make ~name:"75% boundary holds for every sample count"
    ~count:60
    QCheck.(8 -- 64)
    (fun n ->
      let k = int_of_float (ceil (0.75 *. float_of_int n)) in
      let trace matches =
        List.init n (fun i -> if i < matches then 48 else 1000 + (977 * i))
      in
      let at = SP.Stride.dominant ~opts (trace k) in
      let under = SP.Stride.dominant ~opts (trace (k - 1)) in
      (match at with Some p -> p.stride = 48 && p.matched = k | None -> false)
      && under = None)

let test_dominant_min_samples_gate () =
  (* default min_samples is 4: four identical strides pass, three do not *)
  Alcotest.(check int) "default gate" 4 opts.min_samples;
  (match SP.Stride.dominant ~opts [ 24; 24; 24; 24 ] with
  | Some p ->
      Alcotest.(check int) "stride" 24 p.stride;
      Alcotest.(check int) "samples" 4 p.samples
  | None -> Alcotest.fail "min_samples exactly met must be accepted");
  Alcotest.(check bool) "one below the gate rejected" true
    (SP.Stride.dominant ~opts [ 24; 24; 24 ] = None);
  Alcotest.(check bool) "raised gate rejects" true
    (SP.Stride.dominant
       ~opts:{ opts with SP.Options.min_samples = 5 }
       [ 24; 24; 24; 24 ]
    = None)

let prop_inter_constant_address_is_invariant =
  QCheck.Test.make ~name:"constant-address trace -> stride-0 invariant"
    ~count:50
    QCheck.(pair (6 -- 30) (int_bound 100_000))
    (fun (n, addr) ->
      let records = List.init n (fun i -> (i, addr)) in
      match SP.Stride.inter ~opts records with
      | Some p -> p.stride = 0 && SP.Stride.is_invariant p
      | None -> false)

let prop_inter_negative_stride_detected =
  QCheck.Test.make ~name:"descending trace -> negative stride" ~count:50
    QCheck.(pair (6 -- 30) (1 -- 512))
    (fun (n, step) ->
      let top = 1_000_000 in
      let records = List.init n (fun i -> (i, top - (i * step))) in
      match SP.Stride.inter ~opts records with
      | Some p -> p.stride = -step && not (SP.Stride.is_invariant p)
      | None -> false)

let test_phased_fraction_boundary () =
  (* two phases at 70% / 20%: the 20% phase sits exactly on
     phased_min_fraction and must be kept; shaving it below the fraction
     kills the whole phased pattern (a lone 70% phase cannot reach the
     75% joint-majority requirement) *)
  Alcotest.(check (float 1e-9)) "default fraction" 0.2
    phased_opts.SP.Options.phased_min_fraction;
  let build strides =
    let _, rev =
      List.fold_left
        (fun (addr, acc) s -> (addr + s, (List.length acc, addr) :: acc))
        (4096, []) strides
    in
    List.rev rev
  in
  let strides_at =
    (* 20 strides: 14 x 112 (70%), 4 x 272 (20%), 2 unique noise *)
    List.init 14 (fun _ -> 112)
    @ List.init 4 (fun _ -> 272)
    @ [ 997; 1379 ]
  in
  (match SP.Stride.phased ~opts:phased_opts (build strides_at) with
  | [ _; _ ] as phases ->
      let ss =
        List.sort compare
          (List.map (fun (p : SP.Stride.pattern) -> p.stride) phases)
      in
      Alcotest.(check (list int)) "phases at the boundary" [ 112; 272 ] ss
  | l -> Alcotest.failf "expected 2 phases, got %d" (List.length l));
  let strides_under =
    (* 21 strides: the 272 phase drops to 4/21 < 20% *)
    List.init 15 (fun _ -> 112)
    @ List.init 4 (fun _ -> 272)
    @ [ 997; 1379 ]
  in
  Alcotest.(check bool) "under-fraction phase kills the pattern" true
    (SP.Stride.phased ~opts:phased_opts (build strides_under) = [])

(* --- LDG on handcrafted bytecode: chain, diamond, invariant base, pinned
   node/edge sets (fuzzing-oracle satellites) ----------------------------- *)

(* p.a.b.c: the three-level chain L0 -> L1 -> L2 *)
let chain_infos () =
  let code =
    [|
      B.Aload 0;
      B.Getfield { site = 0; offset = 8; name = "a"; is_ref = true };
      B.Getfield { site = 1; offset = 12; name = "b"; is_ref = true };
      B.Getfield { site = 2; offset = 16; name = "c"; is_ref = false };
      B.Ireturn;
    |]
  in
  Jit.Stack_model.analyze code ~arity:1
    ~callee_arity:(fun _ -> 0)
    ~callee_returns:(fun _ -> false)

let test_ldg_three_level_chain () =
  let ldg = SP.Ldg.build (chain_infos ()) ~sites:[ 0; 1; 2 ] in
  Alcotest.(check (list int)) "pinned node set" [ 0; 1; 2 ] (SP.Ldg.sites ldg);
  Alcotest.(check (list int)) "L0 -> L1" [ 1 ] (SP.Ldg.succs ldg 0);
  Alcotest.(check (list int)) "L1 -> L2" [ 2 ] (SP.Ldg.succs ldg 1);
  Alcotest.(check (list int)) "chain end" [] (SP.Ldg.succs ldg 2);
  Alcotest.(check (list int)) "L2's pred" [ 1 ] (SP.Ldg.preds ldg 2);
  Alcotest.(check (list int)) "root has no pred" [] (SP.Ldg.preds ldg 0);
  Alcotest.(check int) "exactly two edges" 2 (SP.Ldg.n_edges ldg);
  (* transitive intra reachability spans the whole chain *)
  Alcotest.(check (list int)) "chain reachable" [ 1; 2 ]
    (List.sort compare (SP.Ldg.reachable_by_intra ldg ~from:0 (fun _ -> true)))

(* h = p.h; a = h.a; b = h.b; c = b.c: one producer shared by two loads
   (the diamond), one of which continues the chain *)
let diamond_infos () =
  let code =
    [|
      B.Aload 0;
      B.Getfield { site = 0; offset = 8; name = "h"; is_ref = true };
      B.Dup;
      B.Getfield { site = 1; offset = 12; name = "a"; is_ref = true };
      B.Astore 1;
      B.Getfield { site = 2; offset = 16; name = "b"; is_ref = true };
      B.Getfield { site = 3; offset = 20; name = "c"; is_ref = false };
      B.Ireturn;
    |]
  in
  Jit.Stack_model.analyze code ~arity:1
    ~callee_arity:(fun _ -> 0)
    ~callee_returns:(fun _ -> false)

let test_ldg_diamond_sharing () =
  let ldg = SP.Ldg.build (diamond_infos ()) ~sites:[ 0; 1; 2; 3 ] in
  Alcotest.(check (list int)) "pinned node set" [ 0; 1; 2; 3 ]
    (SP.Ldg.sites ldg);
  Alcotest.(check (list int)) "shared producer fans out" [ 1; 2 ]
    (List.sort compare (SP.Ldg.succs ldg 0));
  Alcotest.(check (list int)) "left arm stops" [] (SP.Ldg.succs ldg 1);
  Alcotest.(check (list int)) "right arm continues" [ 3 ]
    (SP.Ldg.succs ldg 2);
  Alcotest.(check int) "exactly three edges" 3 (SP.Ldg.n_edges ldg);
  (* blocking the right arm keeps its continuation unreachable *)
  Alcotest.(check (list int)) "selective reachability" [ 1 ]
    (SP.Ldg.reachable_by_intra ldg ~from:0 (fun s -> s <> 2))

(* two loads through loop-invariant bases (distinct parameters): no edge
   may appear between them *)
let invariant_base_infos () =
  let code =
    [|
      B.Aload 0;
      B.Getfield { site = 0; offset = 8; name = "x"; is_ref = false };
      B.Aload 1;
      B.Getfield { site = 1; offset = 8; name = "y"; is_ref = false };
      B.Iadd;
      B.Ireturn;
    |]
  in
  Jit.Stack_model.analyze code ~arity:2
    ~callee_arity:(fun _ -> 0)
    ~callee_returns:(fun _ -> false)

let test_ldg_invariant_base_no_edge () =
  let ldg = SP.Ldg.build (invariant_base_infos ()) ~sites:[ 0; 1 ] in
  Alcotest.(check (list int)) "pinned node set" [ 0; 1 ] (SP.Ldg.sites ldg);
  Alcotest.(check int) "no edges at all" 0 (SP.Ldg.n_edges ldg);
  Alcotest.(check (list int)) "L0 isolated" [] (SP.Ldg.succs ldg 0);
  Alcotest.(check (list int)) "L1 isolated" [] (SP.Ldg.preds ldg 1)

let satellite_suite =
  [
    Helpers.qtest prop_dominant_exact_majority_boundary;
    ("stride: min_samples gate", `Quick, test_dominant_min_samples_gate);
    Helpers.qtest prop_inter_constant_address_is_invariant;
    Helpers.qtest prop_inter_negative_stride_detected;
    ("stride: phased fraction boundary", `Quick, test_phased_fraction_boundary);
    ("ldg: three-level chain pinned", `Quick, test_ldg_three_level_chain);
    ("ldg: diamond sharing pinned", `Quick, test_ldg_diamond_sharing);
    ("ldg: invariant bases stay isolated", `Quick,
     test_ldg_invariant_base_no_edge);
  ]

let suite = suite @ satellite_suite
