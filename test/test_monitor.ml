(* Tests for the live windowed monitor (lib/monitor): detectors on
   synthetic series, the Stats windowed-counter helpers, observer-freedom
   (a monitored run is bit-identical to a plain one on both engines),
   and the phase goldens — the planted shifts are flagged within four
   windows on both machines while every stationary seed workload stays
   free of Degraded verdicts. *)

module H = Workloads.Harness
module SP = Strideprefetch
module Detect = Monitor.Detect
module Report = Monitor.Report
module Window = Monitor.Window

(* ------------------------------------------------------------------ *)
(* Detectors on synthetic series. *)

let cfg = Detect.default

let test_ph_step_drop () =
  (* A healthy plateau then a cliff: the decrease-direction Page–Hinkley
     must alarm within a handful of post-shift samples and stay silent
     before it. *)
  let p = Detect.ph_create () in
  let alarm = ref None in
  for i = 0 to 39 do
    let x = if i < 30 then 0.95 else 0.05 in
    let acc = Detect.ph_update cfg p x in
    if !alarm = None && acc > cfg.Detect.ph_lambda then alarm := Some i
  done;
  match !alarm with
  | None -> Alcotest.fail "cliff never alarmed"
  | Some i ->
      Alcotest.(check bool) "alarmed after the shift" true (i >= 30);
      Alcotest.(check bool)
        (Printf.sprintf "alarmed within 4 samples (at %d)" i)
        true (i <= 33)

let test_ph_stationary_silent () =
  (* Oscillation around a stable mean — the shape of a healthy run —
     must never accumulate past lambda. *)
  let p = Detect.ph_create () in
  for i = 0 to 199 do
    let x = 0.85 +. (0.08 *. if i mod 2 = 0 then 1.0 else -1.0) in
    let acc = Detect.ph_update cfg p x in
    if acc > cfg.Detect.ph_lambda then
      Alcotest.failf "stationary series alarmed at sample %d (acc %.3f)" i acc
  done

let test_drift_one_sided () =
  (* The stall-share drift alarms on a sustained increase... *)
  let d = Detect.drift_create () in
  let alarm = ref None in
  for i = 0 to 29 do
    let x = if i < 20 then 0.35 else 0.60 in
    let acc =
      Detect.drift_update ~slack:cfg.Detect.stall_slack
        ~cap:cfg.Detect.mix_cap ~warmup:cfg.Detect.warmup d x
    in
    if !alarm = None && acc > cfg.Detect.stall_h then alarm := Some i
  done;
  (match !alarm with
  | None -> Alcotest.fail "sustained increase never alarmed"
  | Some i ->
      Alcotest.(check bool)
        (Printf.sprintf "alarmed within 4 samples of the shift (at %d)" i)
        true
        (i >= 20 && i <= 23));
  (* ...but never on symmetric swings around a stable mean, however
     large: that is the benign-phase shape the one-sided form exists
     for. *)
  let d = Detect.drift_create () in
  for i = 0 to 199 do
    let x = 0.40 +. (0.25 *. if i mod 2 = 0 then 1.0 else -1.0) in
    let acc =
      Detect.drift_update ~slack:cfg.Detect.stall_slack
        ~cap:cfg.Detect.mix_cap ~warmup:cfg.Detect.warmup d x
    in
    if acc > cfg.Detect.stall_h then
      Alcotest.failf "symmetric swings alarmed at sample %d (acc %.3f)" i acc
  done

let test_mix_cap_bounds_outlier () =
  (* One maximally divergent window cannot cross a threshold above the
     cap on its own — divergence must be sustained. *)
  let m = Detect.mix_create 4 in
  let steady = [| 0.25; 0.25; 0.25; 0.25 |] in
  for _ = 1 to cfg.Detect.warmup + 4 do
    ignore
      (Detect.mix_update ~slack:cfg.Detect.loop_slack ~cap:cfg.Detect.mix_cap
         ~warmup:cfg.Detect.warmup m steady)
  done;
  let outlier = [| 1.0; 0.0; 0.0; 0.0 |] in
  let acc =
    Detect.mix_update ~slack:cfg.Detect.loop_slack ~cap:cfg.Detect.mix_cap
      ~warmup:cfg.Detect.warmup m outlier
  in
  Alcotest.(check bool)
    (Printf.sprintf "one outlier stays under the cap (acc %.3f)" acc)
    true
    (acc <= cfg.Detect.mix_cap +. 1e-9)

let test_churn_single_window_alarms () =
  (* The defaults promise a window of ~all-fresh allocation sites alarms
     on its own: 1.0 - churn_slack > churn_h. *)
  let c = Detect.cusum_create () in
  let acc = Detect.cusum_update ~slack:cfg.Detect.churn_slack c 1.0 in
  Alcotest.(check bool) "all-fresh window alarms alone" true
    (acc > cfg.Detect.churn_h)

let test_detectors_deterministic () =
  (* Bit-identical accumulator trajectories on reruns: pure float
     arithmetic, no hidden state. *)
  let series =
    Array.init 64 (fun i ->
        0.5 +. (0.3 *. sin (float_of_int i /. 3.0)))
  in
  let trajectory () =
    let p = Detect.ph_create () and d = Detect.drift_create () in
    Array.map
      (fun x ->
        ( Detect.ph_update cfg p x,
          Detect.drift_update ~slack:0.1 ~cap:0.25 ~warmup:4 d x ))
      series
  in
  Alcotest.(check bool) "identical trajectories" true
    (trajectory () = trajectory ())

(* ------------------------------------------------------------------ *)
(* Stats windowed-counter helpers: delta/delta_into are derived from the
   canonical [fields] list, so every counter participates and the two
   forms agree. *)

let test_stats_delta_canonical () =
  let module S = Memsim.Stats in
  let n = List.length S.fields in
  Alcotest.(check int) "fields covers the whole record" n
    (List.length (S.to_alist (S.create ())));
  let a = S.create () and b = S.create () in
  List.iteri (fun i (_, _, set) -> set a ((i + 1) * 7)) S.fields;
  List.iteri (fun i (_, _, set) -> set b (i * 3)) S.fields;
  let d = S.delta a b in
  List.iteri
    (fun i (name, get, _) ->
      Alcotest.(check int)
        (Printf.sprintf "delta.%s" name)
        (((i + 1) * 7) - (i * 3))
        (get d))
    S.fields;
  let into = S.create () in
  S.delta_into a b ~into;
  Alcotest.(check bool) "delta_into agrees with delta" true
    (S.to_alist into = S.to_alist d)

(* ------------------------------------------------------------------ *)
(* Observer freedom: a monitored run must be bit-identical to its plain
   twin in every simulated observable, on both engines — and the
   monitor's verdict timeline must itself be engine-independent. *)

let find_workload name =
  List.find
    (fun (w : Workloads.Workload.t) -> w.name = name)
    (Workloads.Specjvm.all @ Workloads.Javagrande.all)

let test_monitor_observer_only () =
  let w = find_workload "db" in
  let run ~engine ~monitor =
    match monitor with
    | false ->
        H.run ~engine ~mode:SP.Options.Inter_intra
          ~machine:Memsim.Config.pentium4 w
    | true ->
        H.run ~engine ~monitor:Monitor.Collector.default_window_cycles
          ~mode:SP.Options.Inter_intra ~machine:Memsim.Config.pentium4 w
  in
  let timelines =
    List.map
      (fun engine ->
        let plain = run ~engine ~monitor:false in
        let mon = run ~engine ~monitor:true in
        Alcotest.(check string) "output identical" plain.H.output mon.H.output;
        Alcotest.(check int) "cycles identical" plain.H.cycles mon.H.cycles;
        Alcotest.(check int) "gc_count identical" plain.H.gc_count
          mon.H.gc_count;
        Alcotest.(check bool) "core counters identical" true
          (Memsim.Stats.core_alist plain.H.stats
          = Memsim.Stats.core_alist mon.H.stats);
        let rep = Option.get mon.H.monitor in
        Array.map
          (fun (w : Window.t) -> Detect.verdict_code w.verdict)
          rep.Report.windows)
      [ Vm.Interp.Switch; Vm.Interp.Closure ]
  in
  match timelines with
  | [ sw; cl ] ->
      Alcotest.(check bool) "verdict timeline engine-independent" true
        (sw = cl)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Phase goldens: the planted shifts are found within four windows on
   both machines; the stationary seed workloads never go Degraded. *)

let monitored_report ?(machine = Memsim.Config.pentium4) w =
  let r =
    H.run ~monitor:Monitor.Collector.default_window_cycles
      ~mode:SP.Options.Inter_intra ~machine w
  in
  (r, Option.get r.H.monitor)

let check_phase_latency w machine =
  let r, rep = monitored_report ~machine w in
  match Workloads.Phase.marker_offset r.H.output with
  | None -> Alcotest.failf "%s printed no shift marker" w.Workloads.Workload.name
  | Some off -> (
      match Report.detection_latency rep ~marker_offset:off with
      | Report.No_shift -> Alcotest.fail "marker lies past every window"
      | Report.Undetected shift ->
          Alcotest.failf "shift at window %d never flagged" shift
      | Report.Detected { latency; _ } ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s latency %d <= 4"
               w.Workloads.Workload.name machine.Memsim.Config.name latency)
            true (latency <= 4))

let test_phaseshift_detected () =
  check_phase_latency Workloads.Phase.phaseshift Memsim.Config.pentium4;
  check_phase_latency Workloads.Phase.phaseshift Memsim.Config.athlon_mp

let test_phasechurn_detected () =
  check_phase_latency Workloads.Phase.churn Memsim.Config.pentium4;
  check_phase_latency Workloads.Phase.churn Memsim.Config.athlon_mp

let test_phasechurn_reason () =
  (* The churn workload's planted shift is an in-loop allocation burst:
     the first Degraded verdict must name alloc-site churn, on both
     machines. *)
  List.iter
    (fun machine ->
      let _, rep = monitored_report ~machine Workloads.Phase.churn in
      match rep.Report.degraded with
      | [] -> Alcotest.fail "no Degraded verdict"
      | (_, reason) :: _ ->
          Alcotest.(check string) "first reason" "alloc-site-churn"
            (Detect.reason_name reason))
    [ Memsim.Config.pentium4; Memsim.Config.athlon_mp ]

let test_stationary_never_degraded () =
  (* The four historically false-positive-prone stationary workloads
     (periodic bursts, mid-run pass handovers, startup oscillation) on
     both machines; the full 24-run sweep lives in `dune build
     @monitor` / spf_mon. *)
  List.iter
    (fun name ->
      let w = find_workload name in
      List.iter
        (fun machine ->
          let _, rep = monitored_report ~machine w in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s stays clean" name
               machine.Memsim.Config.name)
            true
            (rep.Report.first_degraded = None))
        [ Memsim.Config.pentium4; Memsim.Config.athlon_mp ])
    [ "db"; "jess"; "MonteCarlo"; "RayTracer" ]

let suite =
  [
    Alcotest.test_case "Page-Hinkley flags a cliff within 4 samples" `Quick
      test_ph_step_drop;
    Alcotest.test_case "Page-Hinkley silent on stationary oscillation" `Quick
      test_ph_stationary_silent;
    Alcotest.test_case "drift is one-sided: rises alarm, swings don't" `Quick
      test_drift_one_sided;
    Alcotest.test_case "mix cap bounds a single outlier window" `Quick
      test_mix_cap_bounds_outlier;
    Alcotest.test_case "one all-fresh window alarms the churn cusum" `Quick
      test_churn_single_window_alarms;
    Alcotest.test_case "detector trajectories are deterministic" `Quick
      test_detectors_deterministic;
    Alcotest.test_case "Stats.delta covers every canonical field" `Quick
      test_stats_delta_canonical;
    Alcotest.test_case "monitor is observer-only on both engines" `Slow
      test_monitor_observer_only;
    Alcotest.test_case "PhaseShift flagged within 4 windows, both machines"
      `Slow test_phaseshift_detected;
    Alcotest.test_case "PhaseChurn flagged within 4 windows, both machines"
      `Slow test_phasechurn_detected;
    Alcotest.test_case "PhaseChurn degrades for alloc-site churn" `Slow
      test_phasechurn_reason;
    Alcotest.test_case "stationary workloads never go Degraded" `Slow
      test_stationary_never_degraded;
  ]
