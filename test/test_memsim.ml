(* Unit and property tests for the memory-hierarchy simulator. *)

module Config = Memsim.Config
module Cache = Memsim.Cache
module Tlb = Memsim.Tlb
module Hw = Memsim.Hw_prefetch
module Hier = Memsim.Hierarchy
module Stats = Memsim.Stats

let small_cache =
  {
    Config.size_bytes = 512;
    line_bytes = 64;
    assoc = 2;
    hit_extra = 1;
    miss_penalty = 10;
  }

(* --- config ------------------------------------------------------------- *)

let test_presets_valid () =
  List.iter
    (fun m ->
      match Config.validate m with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s invalid: %s" m.Config.name msg)
    Config.machines

let test_table2_geometry () =
  let p4 = Config.pentium4 and athlon = Config.athlon_mp in
  Alcotest.(check int) "P4 L1 size" (8 * 1024) p4.l1.size_bytes;
  Alcotest.(check int) "P4 L1 line" 64 p4.l1.line_bytes;
  Alcotest.(check int) "P4 L2 size" (256 * 1024) p4.l2.size_bytes;
  Alcotest.(check int) "P4 L2 line" 128 p4.l2.line_bytes;
  Alcotest.(check int) "P4 DTLB entries" 64 p4.dtlb.entries;
  Alcotest.(check int) "Athlon L1 size" (64 * 1024) athlon.l1.size_bytes;
  Alcotest.(check int) "Athlon L1 line" 64 athlon.l1.line_bytes;
  Alcotest.(check int) "Athlon L2 size" (256 * 1024) athlon.l2.size_bytes;
  Alcotest.(check int) "Athlon L2 line" 64 athlon.l2.line_bytes;
  Alcotest.(check int) "Athlon DTLB entries" 256 athlon.dtlb.entries;
  Alcotest.(check bool) "P4 prefetches into L2" true
    (p4.prefetch_target = Config.To_l2);
  Alcotest.(check bool) "Athlon prefetches into L1" true
    (athlon.prefetch_target = Config.To_l1)

let test_validate_rejects () =
  let bad line_bytes =
    { small_cache with Config.line_bytes }
  in
  Alcotest.(check bool)
    "non-power-of-two line rejected" true
    (Result.is_error (Config.validate_cache "t" (bad 48)));
  Alcotest.(check bool)
    "zero assoc rejected" true
    (Result.is_error
       (Config.validate_cache "t" { small_cache with Config.assoc = 0 }))

let test_machine_lookup () =
  Alcotest.(check bool)
    "case-insensitive" true
    (Config.machine_of_name "PENTIUM4" = Some Config.pentium4);
  Alcotest.(check bool) "unknown" true (Config.machine_of_name "vax" = None)

(* --- cache -------------------------------------------------------------- *)

let test_cache_miss_then_hit () =
  let c = Cache.create small_cache in
  Alcotest.(check bool) "cold miss" true (Cache.access c ~addr:0 ~now:0 = Cache.Miss);
  Cache.fill c ~addr:0 ~ready_at:0;
  Alcotest.(check bool) "hit after fill" true
    (Cache.access c ~addr:0 ~now:1 = Cache.Hit);
  Alcotest.(check bool) "same line hits" true
    (Cache.access c ~addr:63 ~now:2 = Cache.Hit);
  Alcotest.(check bool) "next line misses" true
    (Cache.access c ~addr:64 ~now:3 = Cache.Miss)

let test_cache_in_flight () =
  let c = Cache.create small_cache in
  Cache.fill c ~addr:0 ~ready_at:50;
  (match Cache.access c ~addr:0 ~now:20 with
  | Cache.Hit_in_flight residual ->
      Alcotest.(check int) "residual" 30 residual
  | _ -> Alcotest.fail "expected in-flight hit");
  Alcotest.(check bool) "ready after completion" true
    (Cache.access c ~addr:0 ~now:60 = Cache.Hit)

let test_cache_fill_never_raises_ready () =
  let c = Cache.create small_cache in
  Cache.fill c ~addr:0 ~ready_at:10;
  Cache.fill c ~addr:0 ~ready_at:100;
  (* a later fill must not push the line's availability back *)
  Alcotest.(check bool) "still ready at 20" true
    (Cache.access c ~addr:0 ~now:20 = Cache.Hit)

let test_cache_lru_eviction () =
  let c = Cache.create small_cache in
  (* 512/64 = 8 lines, 2-way: 4 sets. Lines 0, 4, 8 map to set 0. *)
  let line n = n * 64 in
  Cache.fill c ~addr:(line 0) ~ready_at:0;
  Cache.fill c ~addr:(line 4) ~ready_at:0;
  ignore (Cache.access c ~addr:(line 0) ~now:1);
  (* line 0 is MRU *)
  Cache.fill c ~addr:(line 8) ~ready_at:0;
  (* evicts line 4 *)
  Alcotest.(check bool) "MRU survived" true (Cache.probe c ~addr:(line 0));
  Alcotest.(check bool) "LRU evicted" false (Cache.probe c ~addr:(line 4));
  Alcotest.(check bool) "new line present" true (Cache.probe c ~addr:(line 8))

let test_cache_probe_no_lru_effect () =
  let c = Cache.create small_cache in
  let line n = n * 64 in
  Cache.fill c ~addr:(line 0) ~ready_at:0;
  Cache.fill c ~addr:(line 4) ~ready_at:0;
  (* probing line 0 must NOT promote it *)
  ignore (Cache.probe c ~addr:(line 0));
  Cache.fill c ~addr:(line 8) ~ready_at:0;
  Alcotest.(check bool) "line 0 evicted despite probe" false
    (Cache.probe c ~addr:(line 0))

let test_cache_reset () =
  let c = Cache.create small_cache in
  Cache.fill c ~addr:0 ~ready_at:0;
  Cache.reset c;
  Alcotest.(check int) "empty" 0 (Cache.resident_lines c);
  Alcotest.(check bool) "miss" true (Cache.access c ~addr:0 ~now:0 = Cache.Miss)

let prop_cache_capacity =
  QCheck.Test.make ~name:"cache never exceeds capacity" ~count:100
    QCheck.(list_of_size Gen.(return 200) (int_bound 100_000))
    (fun addrs ->
      let c = Cache.create small_cache in
      List.iter (fun a -> Cache.fill c ~addr:a ~ready_at:0) addrs;
      Cache.resident_lines c <= 8)

let prop_cache_fill_makes_resident =
  QCheck.Test.make ~name:"a just-filled line is resident" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun addr ->
      let c = Cache.create small_cache in
      Cache.fill c ~addr ~ready_at:0;
      Cache.probe c ~addr)

(* --- tlb ---------------------------------------------------------------- *)

let tlb_params = { Config.entries = 4; page_bytes = 4096; tlb_miss_penalty = 30 }

let test_tlb_basic () =
  let t = Tlb.create tlb_params in
  Alcotest.(check bool) "cold miss" false (Tlb.access t ~addr:0);
  Tlb.fill t ~addr:0;
  Alcotest.(check bool) "hit" true (Tlb.access t ~addr:100);
  Alcotest.(check bool) "other page misses" false (Tlb.access t ~addr:4096)

let test_tlb_lru () =
  let t = Tlb.create tlb_params in
  let page n = n * 4096 in
  for p = 0 to 3 do
    Tlb.fill t ~addr:(page p)
  done;
  ignore (Tlb.access t ~addr:(page 0));
  Tlb.fill t ~addr:(page 9);
  Alcotest.(check bool) "page 0 (MRU) survived" true (Tlb.probe t ~addr:(page 0));
  Alcotest.(check bool) "page 1 (LRU) evicted" false (Tlb.probe t ~addr:(page 1));
  Alcotest.(check int) "full" 4 (Tlb.resident_pages t)

let test_tlb_probe_no_touch () =
  let t = Tlb.create tlb_params in
  let page n = n * 4096 in
  for p = 0 to 3 do
    Tlb.fill t ~addr:(page p)
  done;
  ignore (Tlb.probe t ~addr:(page 0));
  Tlb.fill t ~addr:(page 9);
  Alcotest.(check bool) "probe did not promote" false (Tlb.probe t ~addr:(page 0))

(* --- hardware prefetcher ------------------------------------------------ *)

let stream_hw streams =
  Hw.create
    ~model:(Config.Hw_stream { streams })
    ~line_bytes:64 ~page_bytes:4096

let test_hw_stream () =
  let hw = stream_hw 4 in
  Alcotest.(check bool) "first miss: no prefetch" true
    (Hw.observe_miss hw ~pc:0 ~addr:0 = []);
  Alcotest.(check bool) "adjacent miss establishes stream" true
    (Hw.observe_miss hw ~pc:0 ~addr:64 = [ 128 ]);
  Alcotest.(check bool) "stream advances" true
    (Hw.observe_miss hw ~pc:0 ~addr:128 = [ 192 ])

let test_hw_descending () =
  let hw = stream_hw 4 in
  ignore (Hw.observe_miss hw ~pc:0 ~addr:(4096 + 640));
  Alcotest.(check bool) "descending stream" true
    (Hw.observe_miss hw ~pc:0 ~addr:(4096 + 576) = [ 4096 + 512 ])

let test_hw_page_boundary () =
  let hw = stream_hw 4 in
  ignore (Hw.observe_miss hw ~pc:0 ~addr:(4096 - 128));
  Alcotest.(check bool) "stops at page boundary" true
    (Hw.observe_miss hw ~pc:0 ~addr:(4096 - 64) = [])

let test_hw_disabled () =
  let hw = stream_hw 0 in
  Alcotest.(check bool) "disabled" true (Hw.observe_miss hw ~pc:0 ~addr:0 = []);
  Alcotest.(check bool) "still disabled" true
    (Hw.observe_miss hw ~pc:0 ~addr:64 = [])

(* Regression (satellite of the RPT issue): a re-miss on a live stream's
   current line — the line was evicted and missed again before the
   stream advanced — must be absorbed by that stream, not treated as an
   unrelated miss that allocates (and clobbers) a round-robin victim
   slot. With 2 slots: stream A at line 0, stream B at line 128; B
   re-misses its own line; A must still be alive and able to advance. *)
let test_hw_same_line_remiss () =
  let hw = stream_hw 2 in
  ignore (Hw.observe_miss hw ~pc:0 ~addr:0);
  ignore (Hw.observe_miss hw ~pc:0 ~addr:8192);
  Alcotest.(check bool) "same-line re-miss suggests nothing" true
    (Hw.observe_miss hw ~pc:0 ~addr:(8192 + 32) = []);
  Alcotest.(check bool) "unrelated slot not clobbered" true
    (Hw.observe_miss hw ~pc:0 ~addr:64 = [ 128 ])

(* --- hierarchy ---------------------------------------------------------- *)

let fresh_p4 () = Hier.create Config.pentium4
let fresh_athlon () = Hier.create Config.athlon_mp

let test_demand_miss_cost () =
  let h = fresh_p4 () in
  let m = Config.pentium4 in
  let stall = Hier.demand_access h ~pc:0 ~addr:0x200000 ~kind:`Load ~now:0 in
  (* cold: DTLB walk + L1 miss/L2 miss to memory *)
  Alcotest.(check int) "cold miss stall"
    (m.dtlb.tlb_miss_penalty + m.l1.miss_penalty + m.l2.miss_penalty)
    stall;
  let stall2 = Hier.demand_access h ~pc:0 ~addr:0x200000 ~kind:`Load ~now:100 in
  Alcotest.(check int) "then an L1 hit" m.l1.hit_extra stall2;
  let stats = Hier.stats h in
  Alcotest.(check int) "one L1 load miss" 1 stats.Stats.l1_load_misses;
  Alcotest.(check int) "one L2 load miss" 1 stats.Stats.l2_load_misses;
  Alcotest.(check int) "one DTLB load miss" 1 stats.Stats.dtlb_load_misses

let test_prefetch_cancelled_on_tlb_miss () =
  let h = fresh_p4 () in
  Hier.sw_prefetch h ~addr:0x300000 ~now:0;
  let stats = Hier.stats h in
  Alcotest.(check int) "cancelled" 1 stats.Stats.sw_prefetches_cancelled;
  (* the line was NOT fetched *)
  let stall = Hier.demand_access h ~pc:0 ~addr:0x300000 ~kind:`Load ~now:10 in
  Alcotest.(check bool) "demand still misses fully" true
    (stall >= Config.pentium4.l2.miss_penalty)

let test_prefetch_after_tlb_warm () =
  let h = fresh_p4 () in
  (* warm the page with a demand access to another line *)
  ignore (Hier.demand_access h ~pc:0 ~addr:0x300000 ~kind:`Load ~now:0);
  Hier.sw_prefetch h ~addr:0x300400 ~now:1000;
  (* P4 prefetches into the L2 only: after the fill completes, a demand
     access pays the L1-miss penalty but not the memory latency *)
  let stall = Hier.demand_access h ~pc:0 ~addr:0x300400 ~kind:`Load ~now:5000 in
  Alcotest.(check int) "L2 hit after prefetch"
    Config.pentium4.l1.miss_penalty stall

let test_athlon_prefetch_fills_l1 () =
  let h = fresh_athlon () in
  ignore (Hier.demand_access h ~pc:0 ~addr:0x300000 ~kind:`Load ~now:0);
  Hier.sw_prefetch h ~addr:0x300400 ~now:1000;
  let stall = Hier.demand_access h ~pc:0 ~addr:0x300400 ~kind:`Load ~now:5000 in
  Alcotest.(check int) "L1 hit after prefetch"
    Config.athlon_mp.l1.hit_extra stall

let test_guarded_load_primes_tlb () =
  let h = fresh_p4 () in
  Hier.guarded_load h ~addr:0x400000 ~now:0;
  let stall = Hier.demand_access h ~pc:0 ~addr:0x400000 ~kind:`Load ~now:5000 in
  (* TLB primed and line in L1: only the L1 hit cost remains *)
  Alcotest.(check int) "hit after guarded load"
    Config.pentium4.l1.hit_extra stall;
  Alcotest.(check int) "no DTLB miss event" 0
    (Hier.stats h).Stats.dtlb_load_misses

let test_prefetch_too_late_residual () =
  let h = fresh_p4 () in
  ignore (Hier.demand_access h ~pc:0 ~addr:0x500000 ~kind:`Load ~now:0);
  Hier.sw_prefetch h ~addr:0x500400 ~now:1000;
  (* demand arrives 20 cycles after issue: most of the fill remains *)
  let stall = Hier.demand_access h ~pc:0 ~addr:0x500400 ~kind:`Load ~now:1020 in
  let expected =
    Config.pentium4.l1.miss_penalty + (Config.pentium4.l2.miss_penalty - 20)
  in
  Alcotest.(check int) "residual latency charged" expected stall

let test_line_bytes_by_target () =
  Alcotest.(check int) "P4 prefetch line = L2 line" 128
    (Hier.line_bytes (fresh_p4 ()));
  Alcotest.(check int) "Athlon prefetch line = L1 line" 64
    (Hier.line_bytes (fresh_athlon ()))

(* --- stats -------------------------------------------------------------- *)

let test_stats_mpi () =
  let s = Stats.create () in
  s.Stats.retired_instructions <- 1000;
  s.Stats.l1_load_misses <- 25;
  Alcotest.(check (float 1e-9)) "MPI" 0.025 (Stats.l1_load_mpi s);
  Stats.reset s;
  Alcotest.(check (float 1e-9)) "MPI after reset" 0.0 (Stats.l1_load_mpi s)

let test_stats_add () =
  let a = Stats.create () and b = Stats.create () in
  a.Stats.loads <- 3;
  b.Stats.loads <- 4;
  a.Stats.cycles <- 10;
  b.Stats.cycles <- 20;
  let c = Stats.add a b in
  Alcotest.(check int) "loads" 7 c.Stats.loads;
  Alcotest.(check int) "cycles" 30 c.Stats.cycles

let suite =
  [
    ("config: presets valid", `Quick, test_presets_valid);
    ("config: Table 2 geometry", `Quick, test_table2_geometry);
    ("config: validation rejects bad params", `Quick, test_validate_rejects);
    ("config: machine lookup", `Quick, test_machine_lookup);
    ("cache: miss then hit", `Quick, test_cache_miss_then_hit);
    ("cache: in-flight residual", `Quick, test_cache_in_flight);
    ("cache: fill never delays a line", `Quick, test_cache_fill_never_raises_ready);
    ("cache: LRU eviction", `Quick, test_cache_lru_eviction);
    ("cache: probe has no LRU effect", `Quick, test_cache_probe_no_lru_effect);
    ("cache: reset", `Quick, test_cache_reset);
    Helpers.qtest prop_cache_capacity;
    Helpers.qtest prop_cache_fill_makes_resident;
    ("tlb: basic", `Quick, test_tlb_basic);
    ("tlb: LRU", `Quick, test_tlb_lru);
    ("tlb: probe does not touch", `Quick, test_tlb_probe_no_touch);
    ("hw prefetch: ascending stream", `Quick, test_hw_stream);
    ("hw prefetch: descending stream", `Quick, test_hw_descending);
    ("hw prefetch: stops at page boundary", `Quick, test_hw_page_boundary);
    ("hw prefetch: disabled", `Quick, test_hw_disabled);
    ("hw prefetch: same-line re-miss absorbed", `Quick,
     test_hw_same_line_remiss);
    ("hierarchy: demand miss cost", `Quick, test_demand_miss_cost);
    ("hierarchy: prefetch cancelled on TLB miss", `Quick,
     test_prefetch_cancelled_on_tlb_miss);
    ("hierarchy: P4 prefetch fills L2", `Quick, test_prefetch_after_tlb_warm);
    ("hierarchy: Athlon prefetch fills L1", `Quick,
     test_athlon_prefetch_fills_l1);
    ("hierarchy: guarded load primes TLB", `Quick,
     test_guarded_load_primes_tlb);
    ("hierarchy: late prefetch leaves residual", `Quick,
     test_prefetch_too_late_residual);
    ("hierarchy: prefetch line size per machine", `Quick,
     test_line_bytes_by_target);
    ("stats: MPI", `Quick, test_stats_mpi);
    ("stats: add", `Quick, test_stats_add);
  ]

(* --- model-based property test: the cache against a naive reference ----- *)

(* A straightforward list-based set-associative LRU cache with the same
   geometry, as an executable specification. *)
module Reference_cache = struct
  type t = { sets : int list array; assoc : int; line : int }

  let create ~sets ~assoc ~line = { sets = Array.make sets []; assoc; line }
  let set_of t line = line mod Array.length t.sets

  let access t addr =
    let line = addr / t.line in
    let s = set_of t line in
    let present = List.mem line t.sets.(s) in
    if present then
      (* move to front (MRU) *)
      t.sets.(s) <- line :: List.filter (( <> ) line) t.sets.(s);
    present

  let fill t addr =
    let line = addr / t.line in
    let s = set_of t line in
    if List.mem line t.sets.(s) then
      t.sets.(s) <- line :: List.filter (( <> ) line) t.sets.(s)
    else begin
      let kept =
        if List.length t.sets.(s) >= t.assoc then
          (* drop the LRU = last element *)
          List.filteri (fun i _ -> i < t.assoc - 1) t.sets.(s)
        else t.sets.(s)
      in
      t.sets.(s) <- line :: kept
    end
end

let prop_cache_matches_reference =
  QCheck.Test.make ~name:"cache agrees with a naive LRU reference" ~count:60
    QCheck.(list_of_size Gen.(return 300) (int_bound 4000))
    (fun addrs ->
      let cache = Cache.create small_cache in
      let reference =
        Reference_cache.create ~sets:4 ~assoc:2 ~line:64
      in
      List.for_all
        (fun addr ->
          let got =
            match Cache.access cache ~addr ~now:0 with
            | Cache.Hit | Cache.Hit_in_flight _ -> true
            | Cache.Miss ->
                Cache.fill cache ~addr ~ready_at:0;
                false
          in
          let expected = Reference_cache.access reference addr in
          if not expected then Reference_cache.fill reference addr;
          got = expected)
        addrs)

let suite =
  suite @ [ Helpers.qtest prop_cache_matches_reference ]
