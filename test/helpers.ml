(* Shared test utilities. *)

let compile source = Minijava.Compile.program_of_source_exn source

(* Run a program on a machine (default Pentium 4), with the full JIT
   pipeline incl. stride prefetching at [mode]; returns the interpreter
   after execution. *)
let run_program ?(machine = Memsim.Config.pentium4)
    ?(mode = Strideprefetch.Options.Off) ?(hot_threshold = 2) program =
  let opts = Strideprefetch.Options.(with_mode mode default) in
  let interp_options =
    { (Vm.Interp.default_options machine) with Vm.Interp.hot_threshold }
  in
  let interp = Vm.Interp.create ~options:interp_options machine program in
  let passes =
    Jit.Pipeline.standard_passes ()
    @
    match mode with
    | Strideprefetch.Options.Off -> []
    | _ -> [ Strideprefetch.Pass.make_pass ~opts ~interp () ]
  in
  let pipeline = Jit.Pipeline.create passes in
  Vm.Interp.set_compile_hook interp (fun _ m args ->
      Jit.Pipeline.compile pipeline m args);
  ignore (Vm.Interp.run interp);
  interp

let run_source ?machine ?mode ?hot_threshold source =
  run_program ?machine ?mode ?hot_threshold (compile source)

let output_of ?machine ?mode ?hot_threshold source =
  Vm.Interp.output (run_source ?machine ?mode ?hot_threshold source)

(* A bare program with one static method named T.main built from raw
   bytecode (for VM-level tests that bypass the frontend). *)
let program_of_code ?(max_locals = 8) code =
  let m =
    Vm.Classfile.make_method ~method_id:0 ~method_name:"T.main" ~arity:0
      ~returns_value:false ~max_locals ~code
  in
  {
    Vm.Classfile.classes = [||];
    methods = [| m |];
    statics = [||];
    entry = 0;
  }

let qtest = QCheck_alcotest.to_alcotest

(* Substring test (OCaml's stdlib has none). *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0
