(* Workload and harness tests. Full benchmark runs live in bench/main.exe;
   here we verify that every workload compiles and that the harness
   machinery (speedup, output equality, fractions) behaves. *)

module W = Workloads.Workload
module H = Workloads.Harness

let all = Workloads.Specjvm.all @ Workloads.Javagrande.all

let test_twelve_workloads () =
  Alcotest.(check int) "twelve benchmarks (Table 3)" 12 (List.length all);
  let names = List.map (fun (w : W.t) -> w.name) all in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true
        (List.mem expected names))
    [
      "mtrt"; "jess"; "compress"; "db"; "mpegaudio"; "jack"; "javac";
      "Euler"; "MolDyn"; "MonteCarlo"; "RayTracer"; "Search";
    ]

let test_all_workloads_compile () =
  List.iter
    (fun (w : W.t) ->
      match Minijava.Compile.program_of_source w.source with
      | Ok program ->
          Alcotest.(check bool)
            (w.name ^ " has methods")
            true
            (Array.length program.methods > 0)
      | Error e ->
          Alcotest.failf "%s does not compile: %s" w.name
            (Minijava.Compile.string_of_error e))
    all

let tiny_workload =
  {
    W.name = "tiny";
    suite = `Specjvm;
    description = "harness test fixture";
    paper_note = "";
    heap_limit_bytes = 4 * 1024 * 1024;
    source =
      {|
class Node { int v; Node(int x) { v = x; } }
class T {
  static int walk(Node[] ns) {
    int acc = 0;
    for (int i = 0; i < ns.length; i = i + 1) { acc = acc + ns[i].v; }
    return acc;
  }
  static void main() {
    Node[] ns = new Node[500];
    for (int i = 0; i < 500; i = i + 1) { ns[i] = new Node(i); }
    int acc = 0;
    for (int r = 0; r < 5; r = r + 1) { acc = (acc + T.walk(ns)) % 9973; }
    print(acc);
  }
}
|};
  }

let test_harness_runs_and_checks_output () =
  let machine = Memsim.Config.pentium4 in
  let baseline =
    H.run ~mode:Strideprefetch.Options.Off ~machine tiny_workload
  in
  let optimized =
    H.run ~mode:Strideprefetch.Options.Inter_intra ~machine tiny_workload
  in
  Alcotest.(check string) "identical program output" baseline.output
    optimized.output;
  Alcotest.(check bool) "baseline cycles positive" true (baseline.cycles > 0);
  let s = H.speedup ~baseline optimized in
  Alcotest.(check bool) "speedup is finite and sane" true
    (s > 0.5 && s < 10.0);
  Alcotest.(check (float 1e-9)) "percent consistent"
    ((s -. 1.0) *. 100.0)
    (H.percent_speedup ~baseline optimized)

let test_harness_mode_recorded () =
  let machine = Memsim.Config.athlon_mp in
  let r = H.run ~mode:Strideprefetch.Options.Inter ~machine tiny_workload in
  Alcotest.(check bool) "mode" true (r.mode = Strideprefetch.Options.Inter);
  Alcotest.(check string) "machine" "AthlonMP" r.machine;
  Alcotest.(check bool) "methods compiled" true (r.methods_compiled > 0)

let test_harness_compiled_fraction () =
  let machine = Memsim.Config.pentium4 in
  let r = H.run ~mode:Strideprefetch.Options.Off ~machine tiny_workload in
  let f = H.compiled_fraction r in
  Alcotest.(check bool) "fraction in (0,1)" true (f > 0.0 && f < 1.0)

let test_harness_prefetch_overhead () =
  let machine = Memsim.Config.pentium4 in
  let r =
    H.run ~mode:Strideprefetch.Options.Inter_intra ~machine tiny_workload
  in
  let f = H.prefetch_overhead_fraction r in
  Alcotest.(check bool) "overhead fraction in [0,1)" true (f >= 0.0 && f < 1.0);
  Alcotest.(check bool) "prefetch pass timed" true
    (r.prefetch_pass_seconds >= 0.0)

let test_harness_rejects_output_mismatch () =
  let machine = Memsim.Config.pentium4 in
  let a = H.run ~mode:Strideprefetch.Options.Off ~machine tiny_workload in
  let forged = { a with H.output = "different\n"; cycles = 1 } in
  Alcotest.(check bool) "mismatch detected" true
    (try
       ignore (H.speedup ~baseline:a forged);
       false
     with Invalid_argument _ -> true)

let test_workload_determinism () =
  (* same workload, same machine, same mode: identical cycle counts *)
  let machine = Memsim.Config.pentium4 in
  let r1 = H.run ~mode:Strideprefetch.Options.Inter_intra ~machine tiny_workload in
  let r2 = H.run ~mode:Strideprefetch.Options.Inter_intra ~machine tiny_workload in
  Alcotest.(check int) "deterministic cycles" r1.cycles r2.cycles;
  Alcotest.(check string) "deterministic output" r1.output r2.output

let test_jess_outputs_agree_across_modes () =
  (* one real benchmark end-to-end on both machines and all three modes;
     the rest are covered by bench/main.exe *)
  let w = List.find (fun (w : W.t) -> w.name = "jess") all in
  List.iter
    (fun machine ->
      let baseline = H.run ~mode:Strideprefetch.Options.Off ~machine w in
      let inter = H.run ~mode:Strideprefetch.Options.Inter ~machine w in
      let both = H.run ~mode:Strideprefetch.Options.Inter_intra ~machine w in
      Alcotest.(check string) "INTER agrees" baseline.output inter.output;
      Alcotest.(check string) "INTER+INTRA agrees" baseline.output both.output)
    [ Memsim.Config.pentium4 ]

let suite =
  [
    ("the twelve benchmarks exist", `Quick, test_twelve_workloads);
    ("all workloads compile", `Quick, test_all_workloads_compile);
    ("harness: run + output equality", `Quick,
     test_harness_runs_and_checks_output);
    ("harness: metadata recorded", `Quick, test_harness_mode_recorded);
    ("harness: compiled fraction", `Quick, test_harness_compiled_fraction);
    ("harness: prefetch overhead fraction", `Quick,
     test_harness_prefetch_overhead);
    ("harness: output mismatch rejected", `Quick,
     test_harness_rejects_output_mismatch);
    ("harness: determinism", `Quick, test_workload_determinism);
    ("jess: modes agree end-to-end", `Slow, test_jess_outputs_agree_across_modes);
  ]

(* --- side-effect freedom of object inspection (fuzzing-oracle satellite) ---

   The JIT's object inspection executes bytecode against the real heap
   through a read-only shim; any write would be a correctness bug that the
   differential oracle might only catch probabilistically. Here it is
   checked directly: a bit-identical [`All]-scope snapshot (every live
   object with its address, every static) taken around every JIT
   compilation of every seed workload must be unchanged. *)

let test_inspection_leaves_heap_and_globals_intact () =
  let machine = Memsim.Config.pentium4 in
  List.iter
    (fun (w : W.t) ->
      let compilations = ref 0 in
      let observer ~meth ~before ~after =
        incr compilations;
        match Workloads.Observables.diff before after with
        | None -> ()
        | Some diff ->
            Alcotest.failf "%s: compiling %s changed the heap/statics: %s"
              w.W.name meth.Vm.Classfile.method_name diff
      in
      let r =
        H.run ~compile_observer:observer
          ~mode:Strideprefetch.Options.Inter_intra ~machine w
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: something was compiled" w.W.name)
        true
        (!compilations > 0 && r.H.methods_compiled = !compilations))
    all

let side_effect_suite =
  [
    ("inspection leaves heap and globals bit-identical", `Slow,
     test_inspection_leaves_heap_and_globals_intact);
  ]

let suite = suite @ side_effect_suite
